package sbfl

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRelativeRiskBasic(t *testing.T) {
	// 10 abnormal packets: 8 contain the pattern. 90 normal: 10 contain it.
	s := Spectrum{Npf: 8, Nps: 10, Nnf: 2, Nns: 80}
	// num = 8/18, den = 2/82 -> score = (8/18)/(2/82) ≈ 18.22
	want := (8.0 / 18.0) / (2.0 / 82.0)
	if got := RelativeRisk(s); math.Abs(got-want) > 1e-12 {
		t.Errorf("RelativeRisk = %v, want %v", got, want)
	}
}

func TestRelativeRiskZeroNnfVariation(t *testing.T) {
	// All abnormal packets share the pattern: Nnf = 0 triggers the paper's
	// (Nnf+1) variation rather than dividing by zero.
	s := Spectrum{Npf: 5, Nps: 5, Nnf: 0, Nns: 50}
	want := (5.0 / 10.0) / (1.0 / 51.0)
	got := RelativeRisk(s)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("RelativeRisk = %v, want finite", got)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RelativeRisk = %v, want %v", got, want)
	}
}

func TestRelativeRiskNoCoverage(t *testing.T) {
	if got := RelativeRisk(Spectrum{Nnf: 3, Nns: 7}); got != 0 {
		t.Errorf("uncovered pattern score = %v, want 0", got)
	}
}

func TestGuiltyPatternOutscoresInnocent(t *testing.T) {
	// The faulty switch appears in all abnormal paths and few normal ones;
	// an innocent neighbor appears in some of each.
	guilty := Spectrum{Npf: 20, Nps: 5, Nnf: 0, Nns: 95}
	innocent := Spectrum{Npf: 8, Nps: 40, Nnf: 12, Nns: 60}
	for name, f := range Formulas() {
		if f(guilty) <= f(innocent) {
			t.Errorf("%s: guilty %v <= innocent %v", name, f(guilty), f(innocent))
		}
	}
}

func TestOchiaiKnownValue(t *testing.T) {
	s := Spectrum{Npf: 4, Nps: 0, Nnf: 0, Nns: 6}
	if got := Ochiai(s); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect Ochiai = %v, want 1", got)
	}
	if got := Ochiai(Spectrum{}); got != 0 {
		t.Errorf("empty Ochiai = %v", got)
	}
}

func TestTarantulaRange(t *testing.T) {
	s := Spectrum{Npf: 3, Nps: 3, Nnf: 3, Nns: 3}
	if got := Tarantula(s); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("balanced Tarantula = %v, want 0.5", got)
	}
	if got := Tarantula(Spectrum{Nps: 5, Nns: 5}); got != 0 {
		t.Errorf("no-failure Tarantula = %v", got)
	}
}

func TestJaccardAndDStar(t *testing.T) {
	s := Spectrum{Npf: 6, Nps: 2, Nnf: 4, Nns: 8}
	if got := Jaccard(s); math.Abs(got-6.0/12.0) > 1e-12 {
		t.Errorf("Jaccard = %v", got)
	}
	if got := DStar(s); math.Abs(got-36.0/6.0) > 1e-12 {
		t.Errorf("DStar = %v", got)
	}
	if got := DStar(Spectrum{Npf: 3}); !math.IsInf(got, 1) {
		t.Errorf("DStar with zero denominator = %v, want +Inf", got)
	}
	if got := DStar(Spectrum{}); got != 0 {
		t.Errorf("DStar empty = %v, want 0", got)
	}
}

func TestBuild(t *testing.T) {
	failCover := []bool{true, true, false}
	passCover := []bool{false, true, false, false}
	s := Build(len(failCover), len(passCover),
		func(i int) bool { return failCover[i] },
		func(i int) bool { return passCover[i] })
	want := Spectrum{Npf: 2, Nnf: 1, Nps: 1, Nns: 3}
	if s != want {
		t.Errorf("Build = %+v, want %+v", s, want)
	}
	if s.Total() != 7 {
		t.Errorf("Total = %v", s.Total())
	}
}

// Property: all formulas return non-negative, non-NaN scores on valid
// spectra.
func TestPropertyScoresNonNegative(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		s := Spectrum{Npf: float64(a), Nps: float64(b), Nnf: float64(c), Nns: float64(d)}
		for _, formula := range Formulas() {
			v := formula(s)
			if math.IsNaN(v) || v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: increasing Npf (holding others fixed) never lowers the
// relative-risk score (monotonicity in evidence of guilt).
func TestPropertyRelativeRiskMonotone(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		s := Spectrum{Npf: float64(a), Nps: float64(b), Nnf: float64(c) + 1, Nns: float64(d)}
		s2 := s
		s2.Npf++
		return RelativeRisk(s2) >= RelativeRisk(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
