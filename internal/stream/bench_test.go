package stream

import (
	"testing"

	"mars/internal/netsim"
	"mars/internal/topology"
)

// warmService builds a service whose steady-state ingest path is fully
// warmed: flows admitted, reservoirs at volume (scratch buffers at
// capacity), the current epoch bucket full so the sampler runs the
// replacement branch.
func warmService(tb testing.TB, epochs uint32) (*Service, *testFabric) {
	tb.Helper()
	f := newTestFabric(tb)
	cfg := DefaultConfig(21)
	cfg.EpochSampleCap = 4
	s := New(cfg, f.part, f.table)
	paths := f.pathsInto(tb, f.ft.EdgeIDs[0])
	for e := uint32(0); e < epochs; e++ {
		for _, p := range paths {
			for i := 0; i < 40; i++ {
				s.Ingest(f.rec(tb, p, e, netsim.Millisecond, 0))
			}
		}
		if e+1 < epochs {
			s.CloseEpoch(e)
		}
	}
	return s, f
}

// TestStreamIngestAllocs pins the steady-state ingest hot path at zero
// allocations per record: flow lookup, reservoir input (scratch-buffer
// refresh), path decode, and Algorithm-R replacement must all run
// allocation-free once warm.
func TestStreamIngestAllocs(t *testing.T) {
	s, f := warmService(t, 4)
	p := f.pathsInto(t, f.ft.EdgeIDs[0])[0]
	rec := f.rec(t, p, 3, netsim.Millisecond, 0)
	avg := testing.AllocsPerRun(200, func() {
		s.Ingest(rec)
	})
	if avg != 0 {
		t.Fatalf("steady-state Ingest allocates %.1f/op, want 0", avg)
	}
}

// BenchmarkStreamStep drives the full streaming step — ingest one epoch's
// records, seal the epoch, analyze the sliding window — the figure behind
// the sustained diagnosis throughput claim.
func BenchmarkStreamStep(b *testing.B) {
	f := newTestFabric(b)
	paths := f.pathsInto(b, f.ft.EdgeIDs[0])
	badAgg := f.ft.AggIDs[0]
	cfg := DefaultConfig(33)
	cfg.WindowEpochs = 4
	s := New(cfg, f.part, f.table)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := uint32(i)
		for _, p := range paths {
			gap := uint32(0)
			if p.Contains([]topology.NodeID{badAgg}) && e%7 >= 5 {
				gap = 1
			}
			for r := 0; r < 8; r++ {
				s.Ingest(f.rec(b, p, e, netsim.Millisecond, gap))
			}
		}
		s.CloseEpoch(e + 1)
	}
}
