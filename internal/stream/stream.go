// Package stream is the always-on diagnosis service: it turns the batch
// controlplane+rca pipeline into a continuously-running consumer of sink
// telemetry with bounded per-flow memory and a live metrics surface.
//
// Shape (§ DESIGN.md 14):
//
//	ingest → bounded flow state → sliding-window incremental mining → merge
//
// Records tap out of the data plane through Program.OnRecord and are
// routed to a per-unit state shard keyed by the sink switch's
// topology.PodPartition unit — the same partition the sharded simulator
// uses, which is what makes the stream's output invariant under the
// engine's shard count: each unit's record sequence is produced by exactly
// one owning shard in deterministic event order.
//
// Memory is O(budget), not O(flows): per-flow latency reservoirs live
// under a hard byte budget with least-recently-active eviction, and each
// epoch's records pass through a PINT-style bounded reservoir sample, so a
// unit retains at most EpochSampleCap records per epoch regardless of how
// many flows terminate there.
//
// Every closed window re-scores through the unchanged rca pipeline; the
// fsm.Incremental index updates by epoch deltas instead of re-mining, and
// per-unit culprit lists merge under the PR 1 Confidence rules
// (rca.MergeRanked) with the window's sampling coverage as confidence.
package stream

import (
	"math/rand"
	"sync"

	"mars/internal/dataplane"
	"mars/internal/fsm"
	"mars/internal/metrics"
	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/rca"
	"mars/internal/reservoir"
	"mars/internal/topology"
)

// Config parameterizes the stream service.
type Config struct {
	// Epoch mirrors the data plane's telemetry epoch.
	Epoch netsim.Time
	// WindowEpochs is the sliding window length W; every finalized epoch
	// closes the window that ends on it (slide of one epoch).
	WindowEpochs int
	// BudgetBytes is the hard per-unit budget for per-flow state. When a
	// new flow would exceed it, the least-recently-active flow is evicted
	// (its threshold falls back to the reservoir default on return).
	BudgetBytes int
	// EpochSampleCap bounds the records a unit retains per epoch; beyond
	// it, Algorithm-R reservoir replacement keeps a uniform sample.
	EpochSampleCap int
	// Workers bounds the per-window analysis parallelism across units.
	// Output is byte-identical for any value (results gather at unit
	// index and merge in unit order). <=1 means inline.
	Workers int
	// Seed drives the per-unit sampling RNG streams.
	Seed int64
	// RCA configures the per-window scorer. Miner is overridden per unit
	// with the incremental window index; RecentWindow and EpochDuration
	// are aligned to the window geometry if left zero.
	RCA rca.Config
	// Reservoir configures the per-flow latency reservoirs.
	Reservoir reservoir.Config
}

// DefaultConfig returns the stream evaluation setup: 100 ms epochs, a
// 4-epoch window, 64 KB of flow state and 128 sampled records per epoch
// per unit.
func DefaultConfig(seed int64) Config {
	return Config{
		Epoch:          100 * netsim.Millisecond,
		WindowEpochs:   4,
		BudgetBytes:    64 << 10,
		EpochSampleCap: 128,
		Workers:        1,
		Seed:           seed,
		RCA:            rca.DefaultConfig(),
		Reservoir:      reservoir.DefaultConfig(),
	}
}

// Deterministic byte-accounting constants (documented estimates, not
// unsafe.Sizeof, so the resident-bytes metric is platform-invariant).
const (
	// flowStateOverheadBytes covers the flowState struct, map entry, and
	// reservoir bookkeeping beyond the sample slice.
	flowStateOverheadBytes = 128
	// sampleEntryBytes covers one retained record plus its decoded-path
	// and sequence headers.
	sampleEntryBytes = 160
)

// WindowResult is one closed window's merged diagnosis.
type WindowResult struct {
	// Start, End are the window's first and last epoch (inclusive).
	Start, End uint32
	// Time is the simulated end of the window.
	Time netsim.Time
	// Culprits is the ranked list merged across units (rca.MergeRanked).
	Culprits []rca.Culprit
	// Sampled, Offered aggregate the window's record sampling across
	// units; Sampled/Offered is the coverage behind the confidences.
	Sampled, Offered int
}

// Service is the streaming diagnosis pipeline. Ingest and CloseEpoch must
// be called from one goroutine (the coordinator); window analysis fans out
// to Workers goroutines internally.
type Service struct {
	cfg   Config
	part  *topology.Partition
	units []*unitState

	reg       *metrics.Registry
	ingested  metrics.Counter
	late      metrics.Counter
	sampled   metrics.Counter
	replaced  metrics.Counter
	rejected  metrics.Counter
	evicted   metrics.Counter
	windows   metrics.Counter
	diagnoses metrics.Counter
	churn     metrics.Counter
	resident  metrics.Gauge
	flowsRes  metrics.Gauge
	lag       metrics.Gauge

	// finalizedThrough is the newest epoch whose bucket is sealed and
	// indexed; -1 before any.
	finalizedThrough int64
	// maxEpoch is the newest epoch observed on any record.
	maxEpoch int64
	// lastAnalyzed is the end epoch of the newest closed window; -1
	// before any.
	lastAnalyzed int64

	results []WindowResult
	lists   [][]rca.Culprit
	lastTop string

	// OnWindow, if set, observes every closed window in order.
	OnWindow func(WindowResult)
}

// New builds a service over the partition's units. paths decompresses
// PathIDs for mining (shared, read-only).
func New(cfg Config, part *topology.Partition, paths *pathid.Table) *Service {
	if cfg.WindowEpochs < 1 {
		cfg.WindowEpochs = 1
	}
	if cfg.EpochSampleCap < 1 {
		cfg.EpochSampleCap = 1
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = 100 * netsim.Millisecond
	}
	if cfg.RCA.EpochDuration <= 0 {
		cfg.RCA.EpochDuration = cfg.Epoch
	}
	if cfg.RCA.RecentWindow <= 0 {
		cfg.RCA.RecentWindow = netsim.Time(cfg.WindowEpochs) * cfg.Epoch
	}
	s := &Service{
		cfg:              cfg,
		part:             part,
		reg:              metrics.NewRegistry(),
		finalizedThrough: -1,
		maxEpoch:         -1,
		lastAnalyzed:     -1,
	}
	s.ingested = s.reg.Counter("records_ingested")
	s.late = s.reg.Counter("records_late")
	s.sampled = s.reg.Counter("records_sampled")
	s.replaced = s.reg.Counter("records_replaced")
	s.rejected = s.reg.Counter("records_rejected")
	s.evicted = s.reg.Counter("flows_evicted")
	s.windows = s.reg.Counter("windows_analyzed")
	s.diagnoses = s.reg.Counter("diagnoses")
	s.churn = s.reg.Counter("culprit_churn")
	s.resident = s.reg.Gauge("resident_bytes")
	s.flowsRes = s.reg.Gauge("flows_resident")
	s.lag = s.reg.Gauge("window_lag_epochs")

	s.units = make([]*unitState, part.NumUnits)
	for u := range s.units {
		s.units[u] = newUnitState(&cfg, u, paths)
	}
	return s
}

// Metrics exposes the live registry (read via Snapshot).
func (s *Service) Metrics() *metrics.Registry { return s.reg }

// Results returns the closed windows so far (shared slice; do not mutate).
func (s *Service) Results() []WindowResult { return s.results }

// Merged folds every closed window's per-unit culprit lists under the
// cross-diagnosis merge rules: scores accumulate across windows, each
// culprit keeps the best coverage that supported it.
func (s *Service) Merged() []rca.Culprit { return rca.MergeRanked(s.lists) }

// Ingest routes one sink record to its unit shard. Records for epochs
// already sealed are counted late and dropped — determinism requires that
// a sealed window never reopens.
func (s *Service) Ingest(rec dataplane.RTRecord) {
	s.ingested.Inc()
	if int64(rec.Epoch) <= s.finalizedThrough {
		s.late.Inc()
		return
	}
	if int64(rec.Epoch) > s.maxEpoch {
		s.maxEpoch = int64(rec.Epoch)
	}
	u := s.units[s.part.UnitOf[rec.Flow.Sink]]
	kind := u.ingest(rec)
	switch kind {
	case ingestSampled:
		s.sampled.Inc()
	case ingestReplaced:
		s.replaced.Inc()
	case ingestRejected:
		s.rejected.Inc()
	}
	s.evicted.Add(u.takeEvictions())
}

// CloseEpoch declares that every record arriving up to the end of epoch e
// has been ingested. Epochs <= e-1 are then complete (a record promoted in
// epoch x reaches its sink before the end of epoch x+1), so their buckets
// seal, enter the mining index, and close any window that ends on them.
func (s *Service) CloseEpoch(e uint32) {
	for ep := s.finalizedThrough + 1; ep <= int64(e)-1; ep++ {
		s.finalizeEpoch(uint32(ep))
	}
	s.updateGauges()
}

// Finish seals everything observed, closing the tail windows.
func (s *Service) Finish() {
	if s.maxEpoch >= 0 {
		s.CloseEpoch(uint32(s.maxEpoch) + 2)
	}
}

// finalizeEpoch seals epoch ep in every unit, analyzes the window ending
// on it (once W epochs exist), and expires the bucket leaving the window.
func (s *Service) finalizeEpoch(ep uint32) {
	s.finalizedThrough = int64(ep)
	W := uint32(s.cfg.WindowEpochs)
	analyze := ep+1 >= W
	outs := make([]unitWindowOut, len(s.units))

	work := func(u *unitState, out *unitWindowOut) {
		u.seal(ep)
		if analyze {
			*out = u.analyzeWindow(ep+1-W, ep)
			u.expire(ep + 1 - W)
		}
	}
	workers := s.cfg.Workers
	if workers > len(s.units) {
		workers = len(s.units)
	}
	if workers <= 1 {
		for i, u := range s.units {
			work(u, &outs[i])
		}
	} else {
		// Units are independent state shards; results land at fixed
		// indices and everything below folds in unit order, so the
		// schedule cannot reach the output.
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			//mars:sync workers stride disjoint unit indices and write into pre-indexed outs slots; everything below folds outs in unit order, so the schedule cannot reach the output (the CI determinism job diffs workers=1 against workers=8)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(s.units); i += workers {
					work(s.units[i], &outs[i])
				}
			}(w)
		}
		wg.Wait()
	}

	if !analyze {
		return
	}
	res := WindowResult{Start: ep + 1 - W, End: ep, Time: netsim.Time(ep+1) * s.cfg.Epoch}
	var lists [][]rca.Culprit
	for _, o := range outs {
		res.Sampled += o.sampled
		res.Offered += o.offered
		if len(o.culprits) > 0 {
			lists = append(lists, o.culprits)
			s.lists = append(s.lists, o.culprits)
		}
	}
	res.Culprits = rca.MergeRanked(lists)
	s.lastAnalyzed = int64(ep)
	s.windows.Inc()
	if len(res.Culprits) > 0 {
		s.diagnoses.Inc()
		top := res.Culprits[0].String()
		if s.lastTop != "" && top != s.lastTop {
			s.churn.Inc()
		}
		s.lastTop = top
	}
	s.results = append(s.results, res)
	if s.OnWindow != nil {
		s.OnWindow(res)
	}
}

// updateGauges refreshes the point-in-time surface in unit order.
func (s *Service) updateGauges() {
	var bytes, flows int64
	for _, u := range s.units {
		bytes += int64(u.flowBytes) + u.bucketBytes()
		flows += int64(len(u.flows))
	}
	s.resident.Set(bytes)
	s.flowsRes.Set(flows)
	lag := int64(0)
	if s.maxEpoch >= 0 && s.maxEpoch > s.lastAnalyzed {
		// After Finish the last finalized epoch passes maxEpoch (the
		// grace close); a drained stream reads zero, not negative.
		lag = s.maxEpoch - s.lastAnalyzed
	}
	s.lag.Set(lag)
}

// FlowBytes returns one unit's current flow-state byte accounting (test
// hook for the budget bound).
func (s *Service) FlowBytes(unit int) int { return s.units[unit].flowBytes }

// ingestKind classifies one record's sampling outcome.
type ingestKind uint8

const (
	ingestSampled ingestKind = iota
	ingestReplaced
	ingestRejected
)

// unitState is one pod-partition unit's shard of the stream: bounded flow
// table, epoch sample buckets, incremental pattern index, and a dedicated
// rca analyzer whose thresholds are this unit's reservoirs. Only its
// owning goroutine (the coordinator, or the worker analyzing it) touches
// it.
type unitState struct {
	cfg      *Config
	unit     int
	rng      *rand.Rand
	flows    map[dataplane.FlowID]*flowState
	flowCost int
	// flowBytes is the accounted size of the flow table.
	flowBytes int
	// evictions accumulates since the last takeEvictions.
	evictions int64

	// ring holds the live epoch buckets: up to W sealed (in-window) plus
	// two still-filling epochs.
	ring []*bucket

	inc      *fsm.Incremental
	analyzer *rca.Analyzer
}

type flowState struct {
	res       *reservoir.Reservoir
	lastEpoch uint32
}

type sampleEntry struct {
	rec  dataplane.RTRecord
	path topology.Path
	// seq is the path converted for the mining index, built at seal time.
	seq fsm.Sequence
}

type bucket struct {
	epoch   uint32
	used    bool
	sealed  bool
	offered int
	entries []sampleEntry
}

func newUnitState(cfg *Config, unit int, paths *pathid.Table) *unitState {
	u := &unitState{
		cfg:      cfg,
		unit:     unit,
		rng:      rand.New(rand.NewSource(cfg.Seed ^ int64(uint64(unit+1)*0x9e3779b97f4a7c15))),
		flows:    make(map[dataplane.FlowID]*flowState),
		flowCost: cfg.Reservoir.Volume*8 + flowStateOverheadBytes,
		ring:     make([]*bucket, cfg.WindowEpochs+2),
		inc:      fsm.NewIncremental(cfg.RCA.MaxPatternLen),
	}
	for i := range u.ring {
		u.ring[i] = &bucket{entries: make([]sampleEntry, 0, cfg.EpochSampleCap)}
	}
	rcfg := cfg.RCA
	rcfg.Miner = u.inc.Miner()
	u.analyzer = rca.New(rcfg, paths, u)
	return u
}

// ThresholdOf implements rca.Thresholds from the unit's live reservoirs.
func (u *unitState) ThresholdOf(flow dataplane.FlowID) netsim.Time {
	if fs, ok := u.flows[flow]; ok {
		return netsim.Time(fs.res.Threshold())
	}
	return netsim.Time(u.cfg.Reservoir.DefaultThreshold)
}

// slot returns the ring bucket for epoch ep, recycling an expired slot
// when the ring wraps.
func (u *unitState) slot(ep uint32) *bucket {
	b := u.ring[int(ep)%len(u.ring)]
	if !b.used || b.epoch != ep {
		b.epoch = ep
		b.used = true
		b.sealed = false
		b.offered = 0
		b.entries = b.entries[:0]
	}
	return b
}

// ingest feeds one record: flow state first (every observation counts
// toward the threshold), then the epoch sample (Algorithm R).
func (u *unitState) ingest(rec dataplane.RTRecord) ingestKind {
	fs := u.flows[rec.Flow]
	if fs == nil {
		fs = u.admitFlow(rec.Flow)
	}
	fs.res.Input(float64(rec.Latency))
	if rec.Epoch > fs.lastEpoch {
		fs.lastEpoch = rec.Epoch
	}

	b := u.slot(rec.Epoch)
	b.offered++
	var path topology.Path
	if u.analyzer.Paths != nil {
		path, _ = u.analyzer.Paths.Lookup(rec.Flow.Sink, rec.PathID)
	}
	if len(b.entries) < cap(b.entries) {
		b.entries = append(b.entries, sampleEntry{rec: rec, path: path})
		return ingestSampled
	}
	if j := u.rng.Intn(b.offered); j < cap(b.entries) {
		b.entries[j] = sampleEntry{rec: rec, path: path}
		return ingestReplaced
	}
	return ingestRejected
}

// admitFlow creates flow state under the byte budget, evicting the
// least-recently-active flows first.
func (u *unitState) admitFlow(flow dataplane.FlowID) *flowState {
	for u.flowBytes+u.flowCost > u.cfg.BudgetBytes && len(u.flows) > 0 {
		u.evictColdest()
	}
	fs := &flowState{res: reservoir.New(u.cfg.Reservoir, u.rng)}
	u.flows[flow] = fs
	u.flowBytes += u.flowCost
	return fs
}

// evictColdest removes the least-recently-active flow (ties broken by
// flow ID), so eviction order is a pure function of the ingest sequence.
func (u *unitState) evictColdest() {
	var victim dataplane.FlowID
	first := true
	for f, fs := range u.flows { //mars:mapiter-ok deterministic argmin under the total order (lastEpoch, Src, Sink); iteration order cannot change the minimum
		if first || less(fs.lastEpoch, f, u.flows[victim].lastEpoch, victim) {
			victim, first = f, false
		}
	}
	delete(u.flows, victim)
	u.flowBytes -= u.flowCost
	u.evictions++
}

func less(aEpoch uint32, a dataplane.FlowID, bEpoch uint32, b dataplane.FlowID) bool {
	if aEpoch != bEpoch {
		return aEpoch < bEpoch
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Sink < b.Sink
}

func (u *unitState) takeEvictions() int64 {
	n := u.evictions
	u.evictions = 0
	return n
}

// seal freezes epoch ep's sample and adds its paths to the window index.
func (u *unitState) seal(ep uint32) {
	b := u.slot(ep)
	b.sealed = true
	for i := range b.entries {
		e := &b.entries[i]
		e.seq = e.seq[:0]
		for _, sw := range e.path {
			e.seq = append(e.seq, fsm.Item(sw))
		}
		u.inc.Add(e.seq)
	}
}

// expire removes epoch ep's paths from the index as the window slides off.
func (u *unitState) expire(ep uint32) {
	b := u.ring[int(ep)%len(u.ring)]
	if !b.used || b.epoch != ep || !b.sealed {
		return
	}
	for i := range b.entries {
		u.inc.Remove(b.entries[i].seq)
	}
	b.sealed = false
}

type unitWindowOut struct {
	culprits         []rca.Culprit
	sampled, offered int
}

// analyzeWindow scores the sealed window [start, end] through the rca
// pipeline with this unit's thresholds and window index.
func (u *unitState) analyzeWindow(start, end uint32) unitWindowOut {
	var out unitWindowOut
	var records []dataplane.RTRecord
	for ep := start; ep <= end; ep++ {
		b := u.ring[int(ep)%len(u.ring)]
		if !b.used || b.epoch != ep {
			continue
		}
		out.offered += b.offered
		out.sampled += len(b.entries)
		for i := range b.entries {
			records = append(records, b.entries[i].rec)
		}
	}
	if len(records) == 0 {
		return out
	}
	coverage := 1.0
	if out.offered > 0 {
		coverage = float64(out.sampled) / float64(out.offered)
	}
	now := netsim.Time(end+1) * u.cfg.Epoch
	out.culprits = u.analyzer.AnalyzeWindow(records, now, coverage)
	return out
}

// bucketBytes is the accounted size of the retained window samples.
func (u *unitState) bucketBytes() int64 {
	var n int64
	for _, b := range u.ring {
		if b.used {
			n += int64(len(b.entries)) * sampleEntryBytes
		}
	}
	return n
}
