package stream

import (
	"fmt"
	"strings"
	"testing"

	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/rca"
	"mars/internal/topology"
)

// testFabric is a k=4 fat tree with a full path table, shared by the
// synthetic-ingest tests.
type testFabric struct {
	ft    *topology.FatTree
	part  *topology.Partition
	table *pathid.Table
}

func newTestFabric(t testing.TB) *testFabric {
	t.Helper()
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	table, err := pathid.BuildTable(pathid.DefaultConfig(), ft.Topology, ft.AllEdgePairPaths())
	if err != nil {
		t.Fatal(err)
	}
	return &testFabric{ft: ft, part: ft.PodPartition(), table: table}
}

// rec fabricates one sink record for the flow src→sink over path (which
// must terminate at sink).
func (f *testFabric) rec(t testing.TB, path topology.Path, epoch uint32, lat netsim.Time, gap uint32) dataplane.RTRecord {
	t.Helper()
	id, ok := f.table.FinalID(path)
	if !ok {
		t.Fatalf("path %v has no table ID", path)
	}
	flow := dataplane.FlowID{Src: path[0], Sink: path[len(path)-1]}
	return dataplane.RTRecord{
		Flow:        flow,
		PathID:      id,
		Epoch:       epoch,
		Latency:     lat,
		SourceCount: 6,
		SinkCount:   6,
		PathCount:   6,
		EpochGap:    gap,
		Arrival:     netsim.Time(epoch)*100*netsim.Millisecond + 5*netsim.Millisecond,
	}
}

// pathsInto returns one cross-pod path per remote source edge into
// dstEdge — one flow pinned to one path, like per-flow ECMP — cycling
// through the path alternatives so the flows spread across both
// aggregation switches of the destination pod.
func (f *testFabric) pathsInto(t testing.TB, dstEdge topology.NodeID) []topology.Path {
	t.Helper()
	var out []topology.Path
	i := 0
	for _, src := range f.ft.EdgeIDs {
		if src == dstEdge || f.ft.PodOf(src) == f.ft.PodOf(dstEdge) {
			continue
		}
		ps := f.ft.AllShortestPaths(src, dstEdge)
		out = append(out, ps[i%len(ps)])
		i++
	}
	if len(out) == 0 {
		t.Fatal("no cross-pod paths found")
	}
	return out
}

func snapshotOf(s *Service) string {
	var b strings.Builder
	b.WriteString(s.Metrics().Snapshot())
	b.WriteByte('\n')
	for _, w := range s.Results() {
		fmt.Fprintf(&b, "window [%d,%d] t=%v sampled=%d/%d\n", w.Start, w.End, w.Time, w.Sampled, w.Offered)
		for _, c := range w.Culprits {
			fmt.Fprintf(&b, "  %s\n", c)
		}
	}
	for _, c := range s.Merged() {
		fmt.Fprintf(&b, "merged %s\n", c)
	}
	return b.String()
}

// driveFaulted pushes a deterministic synthetic schedule: steady traffic
// into one sink pod, with epoch-gap drop evidence on every path through
// one aggregation switch during [faultFrom, faultTo].
func driveFaulted(t testing.TB, f *testFabric, s *Service, epochs int, faultFrom, faultTo uint32, badAgg topology.NodeID) {
	t.Helper()
	dst := f.ft.EdgeIDs[0]
	paths := f.pathsInto(t, dst)
	for e := uint32(0); int(e) < epochs; e++ {
		for _, p := range paths {
			gap := uint32(0)
			if e >= faultFrom && e <= faultTo && p.Contains([]topology.NodeID{badAgg}) {
				gap = 1
			}
			s.Ingest(f.rec(t, p, e, 2*netsim.Millisecond, gap))
		}
		s.CloseEpoch(e)
	}
	s.Finish()
}

// The per-flow byte budget is a hard bound: however many flows terminate
// in a unit, its accounted flow state never exceeds BudgetBytes, and the
// overflow shows up as evictions.
func TestStreamBudgetBound(t *testing.T) {
	f := newTestFabric(t)
	cfg := DefaultConfig(7)
	cfg.Reservoir.Volume = 16
	flowCost := cfg.Reservoir.Volume*8 + flowStateOverheadBytes
	cfg.BudgetBytes = 3 * flowCost // room for three flows per unit
	s := New(cfg, f.part, f.table)

	dst := f.ft.EdgeIDs[0]
	unit := int(f.part.UnitOf[dst])
	paths := f.pathsInto(t, dst) // 6 distinct source edges x multipath
	if len(paths) < 6 {
		t.Fatalf("want >=6 paths, got %d", len(paths))
	}
	for e := uint32(0); e < 6; e++ {
		for _, p := range paths {
			s.Ingest(f.rec(t, p, e, netsim.Millisecond, 0))
			if got := s.FlowBytes(unit); got > cfg.BudgetBytes {
				t.Fatalf("epoch %d: flow bytes %d exceed budget %d", e, got, cfg.BudgetBytes)
			}
		}
		s.CloseEpoch(e)
	}
	s.Finish()
	if v, _ := s.Metrics().Get("flows_evicted"); v == 0 {
		t.Fatal("expected evictions under a 3-flow budget with 6 source edges")
	}
	if v, _ := s.Metrics().Get("flows_resident"); v > int64(3*f.part.NumUnits) {
		t.Fatalf("flows_resident = %d, exceeds 3 per unit", v)
	}
}

// One ingest sequence, any worker count: the whole observable surface
// (windows, culprits, merged list, metrics) must be byte-identical.
func TestStreamWorkerInvariance(t *testing.T) {
	f := newTestFabric(t)
	badAgg := f.ft.AggIDs[2]
	run := func(workers int) string {
		cfg := DefaultConfig(11)
		cfg.WindowEpochs = 3
		cfg.Workers = workers
		s := New(cfg, f.part, f.table)
		driveFaulted(t, f, s, 10, 4, 9, badAgg)
		return snapshotOf(s)
	}
	base := run(1)
	for _, w := range []int{2, 4, 13} {
		if got := run(w); got != base {
			t.Fatalf("workers=%d diverges from workers=1:\n--- w=1 ---\n%s--- w=%d ---\n%s", w, base, w, got)
		}
	}
	if !strings.Contains(base, "drop") {
		t.Fatalf("expected a drop culprit in the faulted run:\n%s", base)
	}
}

// Same schedule, same seed → byte-identical output (seeded determinism of
// the sampling and eviction paths).
func TestStreamRunDeterminism(t *testing.T) {
	f := newTestFabric(t)
	run := func() string {
		cfg := DefaultConfig(5)
		cfg.EpochSampleCap = 8 // force sampler replacement activity
		s := New(cfg, f.part, f.table)
		driveFaulted(t, f, s, 8, 3, 7, f.ft.AggIDs[1])
		return snapshotOf(s)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("two identical runs diverge:\n%s\nvs\n%s", a, b)
	}
}

// A fault straddling two windows must be diagnosed in both: the window
// that closes on the fault's first epochs and the next one that slides
// over its tail, and the cross-window merge must carry it.
func TestStreamWindowSlideBoundary(t *testing.T) {
	f := newTestFabric(t)
	cfg := DefaultConfig(3)
	cfg.WindowEpochs = 2
	s := New(cfg, f.part, f.table)
	badAgg := f.ft.AggIDs[0]
	// Fault in epochs 2..3: window [2,3] sees both epochs; windows [1,2]
	// and [3,4] each straddle one boundary epoch.
	driveFaulted(t, f, s, 6, 2, 3, badAgg)

	blames := func(w WindowResult) bool {
		for _, c := range w.Culprits {
			if c.Cause == rca.CauseDrop && c.ContainsSwitch(badAgg) {
				return true
			}
		}
		return false
	}
	var hits []string
	for _, w := range s.Results() {
		if blames(w) {
			hits = append(hits, fmt.Sprintf("[%d,%d]", w.Start, w.End))
		}
	}
	if len(hits) < 2 {
		t.Fatalf("fault found in %d window(s) %v; want it in both straddling windows", len(hits), hits)
	}
	merged := s.Merged()
	if len(merged) == 0 || !merged[0].ContainsSwitch(badAgg) {
		t.Fatalf("merged top-1 does not blame s%d: %v", badAgg, merged)
	}
}

// Late records (arriving after their epoch sealed) must be counted and
// dropped, never reopening a closed window.
func TestStreamLateRecordsDropped(t *testing.T) {
	f := newTestFabric(t)
	s := New(DefaultConfig(1), f.part, f.table)
	dst := f.ft.EdgeIDs[0]
	p := f.pathsInto(t, dst)[0]
	for e := uint32(0); e < 5; e++ {
		s.Ingest(f.rec(t, p, e, netsim.Millisecond, 0))
		s.CloseEpoch(e)
	}
	// Epochs <= 3 are sealed now; epoch 1 is long gone.
	s.Ingest(f.rec(t, p, 1, netsim.Millisecond, 0))
	if v, _ := s.Metrics().Get("records_late"); v != 1 {
		t.Fatalf("records_late = %d, want 1", v)
	}
}

// The epoch sampler is a hard cap: a unit never retains more than
// EpochSampleCap records per epoch, and the coverage fraction reflects
// what was dropped.
func TestStreamEpochSampleCap(t *testing.T) {
	f := newTestFabric(t)
	cfg := DefaultConfig(9)
	cfg.WindowEpochs = 2
	cfg.EpochSampleCap = 4
	s := New(cfg, f.part, f.table)
	dst := f.ft.EdgeIDs[0]
	paths := f.pathsInto(t, dst)
	for e := uint32(0); e < 4; e++ {
		for _, p := range paths {
			for i := 0; i < 3; i++ {
				s.Ingest(f.rec(t, p, e, netsim.Millisecond, 0))
			}
		}
		s.CloseEpoch(e)
	}
	s.Finish()
	offered := int64(0)
	for _, w := range s.Results() {
		if w.Sampled > cfg.EpochSampleCap*cfg.WindowEpochs*f.part.NumUnits {
			t.Fatalf("window [%d,%d] sampled %d records, cap is %d/epoch/unit",
				w.Start, w.End, w.Sampled, cfg.EpochSampleCap)
		}
		offered += int64(w.Offered)
	}
	if rep, _ := s.Metrics().Get("records_replaced"); rep == 0 {
		t.Fatal("sampler never replaced despite overflow")
	}
	if rej, _ := s.Metrics().Get("records_rejected"); rej == 0 {
		t.Fatal("sampler never rejected despite overflow")
	}
	if offered == 0 {
		t.Fatal("no records offered")
	}
}
