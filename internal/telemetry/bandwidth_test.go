package telemetry

import (
	"testing"

	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/topology"
	"mars/internal/workload"
)

// TestCodecLinkUtilization pins every registered codec's in-band cost to
// a closed form derived from its declared widths: over a 5-switch
// cross-pod path each packet pays the PathID field on the 4 inter-switch
// links, and each promoted packet additionally pays
//
//	links·WireBytes + HopBytes·links·(links+1)/2
//
// (the triangular term is perhop's stack growing one entry per hop; it
// vanishes for fixed-width codecs). Total simulated link bytes must equal
// the payload base plus exactly the program's telemetry accounting, so a
// codec can't leak bytes the WireSize() bookkeeping doesn't see.
func TestCodecLinkUtilization(t *testing.T) {
	const (
		size       = 500
		interLinks = 4 // edge->agg->core->agg->edge
		totalLinks = 6 // + the two host links
	)
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			cdc, err := New(name, 3)
			if err != nil {
				t.Fatal(err)
			}
			cfg := dataplane.DefaultProgramConfig()
			cfg.Codec = cdc
			ft, err := topology.NewFatTree(4)
			if err != nil {
				t.Fatal(err)
			}
			table, err := pathid.BuildTable(cfg.PathCfg, ft.Topology, ft.AllEdgePairPaths())
			if err != nil {
				t.Fatal(err)
			}
			prog := dataplane.New(cfg, ft.Topology, table, nil)
			router := netsim.NewECMPRouter(ft.Topology, 3)
			sim := netsim.New(ft.Topology, router, prog, netsim.DefaultConfig(), 3)

			// One cross-pod CBR flow, far below line rate: every packet is
			// delivered over the same-length path, so byte totals are exact.
			f := &workload.Flow{Src: ft.HostIDs[0], Dst: ft.HostIDs[8], Key: 1,
				RatePPS: 100, Gaps: workload.GapConstant,
				Sizes: workload.FixedSize(size), Start: 0, Stop: netsim.Second}
			f.Install(sim)
			sim.Run(2 * netsim.Second)

			if sim.Stats.Dropped != 0 || sim.Stats.Delivered != sim.Stats.Sent {
				t.Fatalf("lossless run expected: sent=%d delivered=%d dropped=%d",
					sim.Stats.Sent, sim.Stats.Delivered, sim.Stats.Dropped)
			}
			n := sim.Stats.Sent
			tp := prog.Stats.TelemetryPackets
			if tp == 0 {
				t.Fatal("no packets were promoted to telemetry")
			}
			if stride := int64(cdc.EpochStride()); tp > n/stride {
				t.Errorf("telemetry packets = %d over %d epochs, want at most one per %d epochs",
					tp, n, stride)
			}

			pathHdr := int64(cfg.PathCfg.HeaderBytes())
			codecTerm := int64(interLinks*cdc.WireBytes()) +
				int64(cdc.HopBytes())*interLinks*(interLinks+1)/2
			want := n*interLinks*pathHdr + tp*codecTerm
			if got := prog.Stats.TelemetryLinkBytes; got != want {
				t.Errorf("telemetry link bytes = %d, want %d (= %d pkts x %d links x %d B PathID + %d telem x %d B)",
					got, want, n, interLinks, pathHdr, tp, codecTerm)
			}

			var total int64
			for _, b := range sim.Stats.LinkBytes {
				total += b
			}
			if wantTotal := n*totalLinks*size + want; total != wantTotal {
				t.Errorf("total link bytes = %d, want %d (payload %d + telemetry %d)",
					total, wantTotal, n*totalLinks*size, want)
			}
		})
	}
}
