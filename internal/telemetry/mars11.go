package telemetry

import (
	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/topology"
)

func init() {
	Register("mars11", func(int64) Codec { return mars11Codec{} })
}

// mars11Codec is the paper's encoding behind the Codec interface: a fixed
// 11-byte header, one telemetry packet per flow per epoch, queue depth
// accumulated in-network. Its data-plane arithmetic is identical to the
// builtin path a nil dataplane.Config.Codec selects, and its wire form is
// bit-identical to dataplane.MarshalINT, so selecting it explicitly
// changes nothing about a seeded run.
type mars11Codec struct{}

func (mars11Codec) Name() string        { return "mars11" }
func (mars11Codec) WireBytes() int      { return Mars11WireBytes }
func (mars11Codec) HopBytes() int       { return 0 }
func (mars11Codec) EpochStride() uint32 { return 1 }

func (mars11Codec) Promote(dataplane.FlowID, uint32) bool { return true }

func (mars11Codec) OnHop(h *dataplane.INTHeader, _ uint64, _ topology.NodeID, qlen int, _ netsim.Time) int {
	h.TotalQueueDepth += uint32(qlen)
	return 0
}

func (mars11Codec) SinkRecord(*dataplane.INTHeader, *dataplane.RTRecord) {}

func (mars11Codec) Marshal(h *dataplane.INTHeader) []byte {
	b := MarshalMars11(h)
	return b[:]
}

func (mars11Codec) Unmarshal(b []byte, now netsim.Time, epochHint uint32) (*dataplane.INTHeader, error) {
	if err := wireLen("mars11", b, Mars11WireBytes); err != nil {
		return nil, err
	}
	var a [Mars11WireBytes]byte
	copy(a[:], b)
	return UnmarshalMars11(a, now, epochHint), nil
}

// DecodeRecords is the identity: the encoding is exact, so every record
// carries full confidence.
func (mars11Codec) DecodeRecords(recs []dataplane.RTRecord) ([]dataplane.RTRecord, []float64) {
	return recs, onesFor(recs)
}

func (mars11Codec) RecordBytes() int { return dataplane.RTRecordBytes }

// onesFor returns a confidence-1 vector sized to recs.
func onesFor(recs []dataplane.RTRecord) []float64 {
	conf := make([]float64, len(recs))
	for i := range conf {
		conf[i] = 1
	}
	return conf
}
