package telemetry

import (
	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/topology"
)

func init() {
	Register("perhop", func(int64) Codec { return perhopCodec{} })
}

// Hop is one classic-INT stack entry recorded by the perhop codec.
type Hop struct {
	Switch topology.NodeID
	// Queue is the egress queue depth observed at the hop.
	Queue uint32
	// SinceSourceUS is the time since the packet entered the source
	// switch, in microseconds.
	SinceSourceUS uint32
}

// HopStack is the perhop codec's Ext payload: the full per-hop trace.
type HopStack struct {
	Hops []Hop
}

// perhopCodec is classic INT, the paper's expensive upper baseline: the
// mars11 base header plus one 8-byte record appended at every traversed
// switch, so wire cost grows linearly with path length (Fig. 2's
// motivating comparison). Detection signals are a superset of mars11's —
// the base accumulator is still maintained — so localization accuracy
// matches mars11 while bytes/packet strictly dominate it.
type perhopCodec struct{}

func (perhopCodec) Name() string        { return "perhop" }
func (perhopCodec) WireBytes() int      { return PerhopWireBytes }
func (perhopCodec) HopBytes() int       { return PerhopHopBytes }
func (perhopCodec) EpochStride() uint32 { return 1 }

func (perhopCodec) Promote(dataplane.FlowID, uint32) bool { return true }

func (perhopCodec) OnHop(h *dataplane.INTHeader, _ uint64, sw topology.NodeID, qlen int, now netsim.Time) int {
	h.TotalQueueDepth += uint32(qlen)
	st, _ := h.Ext.(*HopStack)
	if st == nil {
		st = &HopStack{}
		h.Ext = st
	}
	st.Hops = append(st.Hops, Hop{
		Switch:        sw,
		Queue:         uint32(qlen),
		SinceSourceUS: uint32((now - h.SourceTS) / netsim.Microsecond),
	})
	return PerhopHopBytes
}

func (perhopCodec) SinkRecord(h *dataplane.INTHeader, r *dataplane.RTRecord) {
	if st, ok := h.Ext.(*HopStack); ok {
		r.Ext = st
	}
}

func (perhopCodec) Marshal(h *dataplane.INTHeader) []byte {
	base := MarshalPerhop(h)
	out := base[:]
	if st, ok := h.Ext.(*HopStack); ok {
		for i := range st.Hops {
			hb := MarshalPerhopHop(&st.Hops[i])
			out = append(out, hb[:]...)
		}
	}
	return out
}

func (perhopCodec) Unmarshal(b []byte, now netsim.Time, epochHint uint32) (*dataplane.INTHeader, error) {
	if len(b) < PerhopWireBytes || (len(b)-PerhopWireBytes)%PerhopHopBytes != 0 {
		return nil, wireLen("perhop", b, PerhopWireBytes+(max(len(b)-PerhopWireBytes, 0)/PerhopHopBytes)*PerhopHopBytes)
	}
	var a [PerhopWireBytes]byte
	copy(a[:], b[:PerhopWireBytes])
	h := UnmarshalPerhop(a, now, epochHint)
	rest := b[PerhopWireBytes:]
	if len(rest) > 0 {
		st := &HopStack{Hops: make([]Hop, 0, len(rest)/PerhopHopBytes)}
		for off := 0; off < len(rest); off += PerhopHopBytes {
			var hb [PerhopHopBytes]byte
			copy(hb[:], rest[off:off+PerhopHopBytes])
			st.Hops = append(st.Hops, UnmarshalPerhopHop(hb))
		}
		h.Ext = st
	}
	return h, nil
}

// DecodeRecords is the identity with full confidence: the per-hop trace
// is exact.
func (perhopCodec) DecodeRecords(recs []dataplane.RTRecord) ([]dataplane.RTRecord, []float64) {
	return recs, onesFor(recs)
}

// RecordBytes is the base 28-byte collection record: the sink stores the
// aggregate fields, not the raw stack, so collection cost matches mars11
// — perhop pays its premium in-band, on every telemetry packet.
func (perhopCodec) RecordBytes() int { return dataplane.RTRecordBytes }
