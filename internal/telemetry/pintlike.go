package telemetry

import (
	"sort"

	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/topology"
)

func init() {
	Register("pintlike", func(seed int64) Codec { return pintlikeCodec{seed: uint64(seed)} })
}

// HopSample is the pintlike codec's fixed-width slot: one hop's
// observation, chosen by per-packet reservoir sampling so that across
// many packets of a flow every hop is observed with equal probability.
type HopSample struct {
	Switch topology.NodeID
	// Depth is the quantized egress queue depth at the sampled hop.
	Depth uint32
	// Index is the 1-based hop position of the sample; 0 means empty.
	Index uint8
	// Count is how many hops the packet had traversed by the sink, i.e.
	// the path length the reconstruction normalizes coverage against.
	Count uint8
}

// PathProfile is the controller-side reconstruction attached to decoded
// records: per-hop mean queue depths assembled from the slots of every
// record sharing the (flow, path).
type PathProfile struct {
	// Hops is sorted by hop index; only observed hops appear.
	Hops []HopDepth
	// PathLen is the hop count reported by the samples.
	PathLen int
}

// HopDepth is one reconstructed hop: its position, the switch observed
// there, and the mean sampled depth.
type HopDepth struct {
	Index  uint8
	Switch topology.NodeID
	Depth  float64
}

// pintlikeCodec approximates PINT's value mode: the 11-byte base header
// stays exact (so latency/drop detection is unchanged from mars11), and a
// 5-byte slot carries one probabilistically chosen hop observation in
// place of perhop's whole stack. Hop k of a packet overwrites the slot
// with probability 1/k — classic reservoir sampling driven by a seeded
// hash of (packet ID, hop index), deterministic for a fixed seed. The
// controller groups collected records by (flow, path) and rebuilds the
// per-hop queue profile across packets; confidence is the fraction of the
// path the group actually observed.
type pintlikeCodec struct {
	seed uint64
}

func (pintlikeCodec) Name() string        { return "pintlike" }
func (pintlikeCodec) WireBytes() int      { return PintlikeWireBytes }
func (pintlikeCodec) HopBytes() int       { return 0 }
func (pintlikeCodec) EpochStride() uint32 { return 1 }

func (pintlikeCodec) Promote(dataplane.FlowID, uint32) bool { return true }

func (c pintlikeCodec) OnHop(h *dataplane.INTHeader, pktID uint64, sw topology.NodeID, qlen int, _ netsim.Time) int {
	h.TotalQueueDepth += uint32(qlen)
	hs, _ := h.Ext.(*HopSample)
	if hs == nil {
		hs = &HopSample{}
		h.Ext = hs
	}
	if hs.Count < 0xFF {
		hs.Count++
	}
	k := uint64(hs.Count)
	if k == 1 || mix64(c.seed^pktID*0x9E3779B97F4A7C15^k*0xD1B54A32D192ED03)%k == 0 {
		hs.Switch = sw
		hs.Depth = uint32(qlen)
		hs.Index = hs.Count
	}
	return 0
}

func (pintlikeCodec) SinkRecord(h *dataplane.INTHeader, r *dataplane.RTRecord) {
	if hs, ok := h.Ext.(*HopSample); ok {
		s := *hs
		r.Ext = &s
	}
}

func (pintlikeCodec) Marshal(h *dataplane.INTHeader) []byte {
	b := MarshalPintlike(h)
	return b[:]
}

func (pintlikeCodec) Unmarshal(b []byte, now netsim.Time, epochHint uint32) (*dataplane.INTHeader, error) {
	if err := wireLen("pintlike", b, PintlikeWireBytes); err != nil {
		return nil, err
	}
	var a [PintlikeWireBytes]byte
	copy(a[:], b)
	return UnmarshalPintlike(a, now, epochHint), nil
}

// DecodeRecords reconstructs per-hop queue profiles: records are grouped
// by (flow, path), their slots merged into mean depths per hop index, and
// each record's confidence is the group's observed-hop coverage of the
// path. The exact base fields pass through untouched, so RCA sees the
// same signatures as mars11, annotated with how much of the path the
// probabilistic slots actually illuminated.
func (c pintlikeCodec) DecodeRecords(recs []dataplane.RTRecord) ([]dataplane.RTRecord, []float64) {
	type groupKey struct {
		flow dataplane.FlowID
		path uint64
	}
	type hopAgg struct {
		sw    topology.NodeID
		sum   float64
		n     int
		index uint8
	}
	groups := make(map[groupKey]map[uint8]*hopAgg)
	pathLen := make(map[groupKey]int)
	for i := range recs {
		hs, ok := recs[i].Ext.(*HopSample)
		if !ok || hs.Index == 0 {
			continue
		}
		k := groupKey{flow: recs[i].Flow, path: uint64(recs[i].PathID)}
		g := groups[k]
		if g == nil {
			g = make(map[uint8]*hopAgg)
			groups[k] = g
		}
		a := g[hs.Index]
		if a == nil {
			a = &hopAgg{sw: hs.Switch, index: hs.Index}
			g[hs.Index] = a
		}
		a.sum += float64(hs.Depth)
		a.n++
		if int(hs.Count) > pathLen[k] {
			pathLen[k] = int(hs.Count)
		}
	}
	out := make([]dataplane.RTRecord, len(recs))
	copy(out, recs)
	conf := make([]float64, len(recs))
	profiles := make(map[groupKey]*PathProfile)
	for i := range out {
		hs, ok := out[i].Ext.(*HopSample)
		if !ok || hs.Index == 0 {
			// No slot reached the sink for this record; the exact base
			// fields still hold, but the probabilistic layer saw nothing.
			conf[i] = 0
			continue
		}
		k := groupKey{flow: out[i].Flow, path: uint64(out[i].PathID)}
		p := profiles[k]
		if p == nil {
			g := groups[k]
			p = &PathProfile{PathLen: pathLen[k]}
			idxs := make([]int, 0, len(g))
			for idx := range g {
				//mars:mapiter-ok keys are sorted before use
				idxs = append(idxs, int(idx))
			}
			sort.Ints(idxs)
			for _, idx := range idxs {
				a := g[uint8(idx)]
				p.Hops = append(p.Hops, HopDepth{Index: a.index, Switch: a.sw, Depth: a.sum / float64(a.n)})
			}
			profiles[k] = p
		}
		out[i].Ext = p
		if p.PathLen > 0 {
			conf[i] = float64(len(p.Hops)) / float64(p.PathLen)
		}
	}
	return out, conf
}

func (pintlikeCodec) RecordBytes() int { return dataplane.RTRecordBytes }

// mix64 is a splitmix64 finalizer: a stateless, seed-stable hash for the
// per-hop sampling decision (no shared RNG state, so packet processing
// order cannot perturb it).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
