package telemetry

import (
	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/topology"
)

// DefaultSampledStride is the registered "sampled" codec's promotion
// period: one telemetry packet every 2 epochs, halving in-band cost.
const DefaultSampledStride = 2

func init() {
	Register("sampled", func(int64) Codec { return sampledCodec{stride: DefaultSampledStride} })
}

// sampledCodec is epoch-subsampled mars11: the same 11-byte header, but a
// flow's marked packet is promoted only when the epoch is a multiple of
// the stride. Bytes drop by ~1/stride; detection and reconstruction see
// only every Nth epoch, so temporal coverage (and the reconstruction
// confidence handed to RCA) drops with it.
type sampledCodec struct {
	stride uint32
}

func (sampledCodec) Name() string          { return "sampled" }
func (sampledCodec) WireBytes() int        { return SampledWireBytes }
func (sampledCodec) HopBytes() int         { return 0 }
func (c sampledCodec) EpochStride() uint32 { return c.stride }

func (c sampledCodec) Promote(_ dataplane.FlowID, epoch uint32) bool {
	return epoch%c.stride == 0
}

func (sampledCodec) OnHop(h *dataplane.INTHeader, _ uint64, _ topology.NodeID, qlen int, _ netsim.Time) int {
	h.TotalQueueDepth += uint32(qlen)
	return 0
}

func (sampledCodec) SinkRecord(*dataplane.INTHeader, *dataplane.RTRecord) {}

func (c sampledCodec) Marshal(h *dataplane.INTHeader) []byte {
	b := MarshalSampled(h, c.stride)
	return b[:]
}

func (c sampledCodec) Unmarshal(b []byte, now netsim.Time, epochHint uint32) (*dataplane.INTHeader, error) {
	if err := wireLen("sampled", b, SampledWireBytes); err != nil {
		return nil, err
	}
	var a [SampledWireBytes]byte
	copy(a[:], b)
	h, _ := UnmarshalSampled(a, now, epochHint)
	return h, nil
}

// DecodeRecords passes records through exactly but reports 1/stride
// confidence: each record is precise, yet it stands in for stride epochs
// of unobserved behavior.
func (c sampledCodec) DecodeRecords(recs []dataplane.RTRecord) ([]dataplane.RTRecord, []float64) {
	conf := make([]float64, len(recs))
	for i := range conf {
		conf[i] = 1 / float64(c.stride)
	}
	return recs, conf
}

func (sampledCodec) RecordBytes() int { return dataplane.RTRecordBytes }
