// Package telemetry makes the MARS telemetry encoding a pluggable design
// point. The paper argues for a fixed 11-byte header against per-hop
// growing INT stacks (§4.2, Fig. 2); PINT (Ben Basat et al., SIGCOMM
// 2020) shows the space between those extremes — probabilistic per-hop
// sampling into a fixed-width slot, reconstructed from many packets at
// the sink. This package defines the Codec seam and registers four
// encodings spanning that frontier:
//
//   - mars11: the paper's 11-byte header, byte-identical to the
//     historical pipeline (the default).
//   - perhop: classic INT — one 8-byte record appended per hop, the
//     expensive exact upper baseline whose cost grows with path length.
//   - pintlike: the 11-byte base plus a 5-byte probabilistic hop slot;
//     each hop reservoir-samples itself into the slot with seeded
//     hashing, and the controller reconstructs per-hop queue profiles
//     across packets with a coverage confidence.
//   - sampled: the 11-byte header promoted only every Nth epoch,
//     trading temporal coverage for bytes.
//
// A Codec is both the data-plane program hooks (dataplane.Codec) and the
// controller-side wire marshal/unmarshal + record decoder, so one value
// threads through mars.Config into both halves of the system. The
// `mars-bench -exp overhead` sweep measures the resulting cost–accuracy
// frontier over the Table 1 fault suite.
package telemetry

import (
	"fmt"
	"sort"

	"mars/internal/dataplane"
	"mars/internal/netsim"
)

// Codec is a full telemetry encoding: the data-plane hooks plus the wire
// format and the controller-side decoder.
type Codec interface {
	dataplane.Codec

	// Marshal encodes the in-flight header into its wire bytes. The
	// length is WireBytes() plus HopBytes() per recorded hop.
	Marshal(h *dataplane.INTHeader) []byte
	// Unmarshal decodes wire bytes; now anchors timestamp recovery and
	// epochHint anchors 16-bit epoch expansion, as in dataplane.UnmarshalINT.
	Unmarshal(b []byte, now netsim.Time, epochHint uint32) (*dataplane.INTHeader, error)

	// DecodeRecords reconstructs a collected Ring Table snapshot on the
	// controller. It returns the (possibly rewritten) records and a
	// per-record reconstruction confidence in [0,1]: 1 for exact
	// encodings, the observed-hop coverage for pintlike, the epoch
	// coverage for sampled.
	DecodeRecords(recs []dataplane.RTRecord) ([]dataplane.RTRecord, []float64)
	// RecordBytes is the wire size of one record during on-demand
	// collection (28 for the paper's encoding).
	RecordBytes() int
}

// factories maps registered codec names to constructors. seed feeds any
// codec-internal hashing (only pintlike uses it); codecs must be
// deterministic functions of (seed, packet contents).
var factories = map[string]func(seed int64) Codec{}

// Register installs a codec constructor under name. It panics on
// duplicates: registration happens from init functions, so a collision is
// a programming error.
func Register(name string, f func(seed int64) Codec) {
	if _, dup := factories[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate codec %q", name))
	}
	factories[name] = f
}

// New builds the named codec. The error lists the registered names so CLI
// surfaces can echo it directly.
func New(name string, seed int64) (Codec, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("telemetry: unknown codec %q (valid: %s)", name, nameList())
	}
	return f(seed), nil
}

// Names returns the registered codec names in sorted order.
func Names() []string {
	out := make([]string, 0, len(factories))
	for name := range factories {
		//mars:mapiter-ok keys are sorted before use
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func nameList() string {
	var s string
	for i, name := range Names() {
		if i > 0 {
			s += ", "
		}
		s += name
	}
	return s
}
