package telemetry

import (
	"reflect"
	"strings"
	"testing"

	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/topology"
)

func TestNamesSortedAndComplete(t *testing.T) {
	want := []string{"mars11", "perhop", "pintlike", "sampled"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

func TestNewUnknownListsValid(t *testing.T) {
	_, err := New("morse", 1)
	if err == nil {
		t.Fatal("New of an unknown codec must error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"morse"`) || !strings.Contains(msg, "valid:") {
		t.Errorf("error %q must echo the bad name and list valid codecs", msg)
	}
	for _, name := range Names() {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not list %q", msg, name)
		}
	}
}

// sampleHeaders exercises zero, mid-range, and saturating field values.
func sampleHeaders() []*dataplane.INTHeader {
	return []*dataplane.INTHeader{
		{},
		{SourceTS: 3 * netsim.Second, LastEpochCount: 40, TotalQueueDepth: 7, EpochID: 12, Flagged: true},
		{SourceTS: 5400 * netsim.Second, LastEpochCount: 0xFFFF, TotalQueueDepth: 0xFFFF, EpochID: 1 << 18},
	}
}

// TestMars11MatchesDataplane pins the mars11 wire form to the paper's
// encoder bit for bit (the property wire.go's doc comment promises).
func TestMars11MatchesDataplane(t *testing.T) {
	for _, h := range sampleHeaders() {
		if got, want := MarshalMars11(h), dataplane.MarshalINT(h); got != want {
			t.Errorf("MarshalMars11(%+v) = %v, dataplane.MarshalINT = %v", h, got, want)
		}
	}
}

// TestMarshalLenMatchesDeclared checks every registered codec's Marshal
// length against its declared WireBytes/HopBytes — the runtime face of
// the invariant mars-lint's wirewidth codec check pins statically.
func TestMarshalLenMatchesDeclared(t *testing.T) {
	for _, name := range Names() {
		c, err := New(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		h := &dataplane.INTHeader{SourceTS: netsim.Second, EpochID: 3}
		hops := 0
		for i := 1; i <= 4; i++ {
			if grow := c.OnHop(h, 7, topology.NodeID(i), i, netsim.Second+netsim.Time(i)*netsim.Millisecond); grow > 0 {
				hops++
			}
		}
		want := c.WireBytes() + hops*c.HopBytes()
		if got := len(c.Marshal(h)); got != want {
			t.Errorf("%s: Marshal produced %d bytes after 4 hops, want %d", name, got, want)
		}
		back, err := c.Unmarshal(c.Marshal(h), 2*netsim.Second, h.EpochID)
		if err != nil {
			t.Errorf("%s: Unmarshal of own Marshal failed: %v", name, err)
		} else if back.EpochID != h.EpochID {
			t.Errorf("%s: epoch %d round-tripped as %d", name, h.EpochID, back.EpochID)
		}
	}
}

func TestSampledStride(t *testing.T) {
	c, err := New("sampled", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.EpochStride(); got != DefaultSampledStride {
		t.Fatalf("EpochStride() = %d, want %d", got, DefaultSampledStride)
	}
	for epoch := uint32(0); epoch < 10; epoch++ {
		want := epoch%DefaultSampledStride == 0
		if got := c.Promote(dataplane.FlowID{}, epoch); got != want {
			t.Errorf("Promote(epoch=%d) = %v, want %v", epoch, got, want)
		}
	}
	recs := make([]dataplane.RTRecord, 3)
	_, conf := c.DecodeRecords(recs)
	for i, v := range conf {
		if v != 1.0/DefaultSampledStride {
			t.Errorf("conf[%d] = %v, want %v", i, v, 1.0/DefaultSampledStride)
		}
	}
}

// TestPintlikeDeterministicSampling: the slot decision is a pure function
// of (seed, packet ID, hop index) — two walks of the same packet agree,
// and hop 1 always seeds the slot.
func TestPintlikeDeterministicSampling(t *testing.T) {
	walk := func(seed int64, pktID uint64) HopSample {
		c, err := New("pintlike", seed)
		if err != nil {
			t.Fatal(err)
		}
		h := &dataplane.INTHeader{}
		for i := 1; i <= 5; i++ {
			c.OnHop(h, pktID, topology.NodeID(i), 10*i, netsim.Time(i)*netsim.Millisecond)
		}
		return *h.Ext.(*HopSample)
	}
	if a, b := walk(7, 99), walk(7, 99); a != b {
		t.Errorf("same (seed, packet) sampled differently: %+v vs %+v", a, b)
	}
	if s := walk(7, 99); s.Count != 5 || s.Index == 0 || s.Index > 5 {
		t.Errorf("slot after 5 hops out of range: %+v", s)
	}
	// A different seed must be able to pick a different hop for at least
	// one packet — the hash actually depends on the seed.
	varies := false
	for pkt := uint64(0); pkt < 32 && !varies; pkt++ {
		varies = walk(1, pkt).Index != walk(2, pkt).Index
	}
	if !varies {
		t.Error("slot choice ignores the codec seed")
	}
}

// TestPintlikeDecodeCoverage: records of one (flow, path) merge into a
// shared profile whose coverage is observedHops/pathLen; slotless records
// get confidence 0.
func TestPintlikeDecodeCoverage(t *testing.T) {
	c, err := New("pintlike", 1)
	if err != nil {
		t.Fatal(err)
	}
	flow := dataplane.FlowID{Src: 1, Sink: 2}
	recs := []dataplane.RTRecord{
		{Flow: flow, PathID: 9, Ext: &HopSample{Switch: 4, Depth: 10, Index: 1, Count: 4}},
		{Flow: flow, PathID: 9, Ext: &HopSample{Switch: 4, Depth: 30, Index: 1, Count: 4}},
		{Flow: flow, PathID: 9, Ext: &HopSample{Switch: 6, Depth: 8, Index: 3, Count: 4}},
		{Flow: flow, PathID: 9}, // slot never reached the sink
	}
	out, conf := c.DecodeRecords(recs)
	p, ok := out[0].Ext.(*PathProfile)
	if !ok {
		t.Fatalf("decoded record carries %T, want *PathProfile", out[0].Ext)
	}
	if p.PathLen != 4 || len(p.Hops) != 2 {
		t.Fatalf("profile = %+v, want PathLen 4 with 2 observed hops", p)
	}
	if p.Hops[0].Index != 1 || p.Hops[0].Depth != 20 {
		t.Errorf("hop 1 = %+v, want mean depth 20", p.Hops[0])
	}
	if p.Hops[1].Index != 3 || p.Hops[1].Switch != 6 {
		t.Errorf("hop 3 = %+v, want switch 6", p.Hops[1])
	}
	want := []float64{0.5, 0.5, 0.5, 0}
	if !reflect.DeepEqual(conf, want) {
		t.Errorf("conf = %v, want %v", conf, want)
	}
}

// TestPerhopStack: the hop trace survives sink recording and marshalling.
func TestPerhopStack(t *testing.T) {
	c, err := New("perhop", 1)
	if err != nil {
		t.Fatal(err)
	}
	h := &dataplane.INTHeader{SourceTS: netsim.Second}
	for i := 1; i <= 3; i++ {
		if grow := c.OnHop(h, 1, topology.NodeID(10+i), i, netsim.Second+netsim.Time(i)*netsim.Millisecond); grow != PerhopHopBytes {
			t.Fatalf("OnHop grew %d bytes, want %d", grow, PerhopHopBytes)
		}
	}
	var rec dataplane.RTRecord
	c.SinkRecord(h, &rec)
	st, ok := rec.Ext.(*HopStack)
	if !ok || len(st.Hops) != 3 {
		t.Fatalf("sink record Ext = %#v, want a 3-hop stack", rec.Ext)
	}
	if st.Hops[2].Switch != 13 || st.Hops[2].SinceSourceUS != 3000 {
		t.Errorf("hop 3 = %+v, want switch 13 at 3000µs", st.Hops[2])
	}
	back, err := c.Unmarshal(c.Marshal(h), 2*netsim.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Ext.(*HopStack); !reflect.DeepEqual(got, st) {
		t.Errorf("stack did not round-trip: %+v vs %+v", got, st)
	}
}
