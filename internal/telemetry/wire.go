package telemetry

import (
	"encoding/binary"
	"fmt"

	"mars/internal/dataplane"
	"mars/internal/netsim"
	"mars/internal/topology"
)

// Wire forms for the registered codecs. Like dataplane/wire.go, every
// fixed-width layout here is a Marshal<X>/Unmarshal<X> pair over an
// [N]byte array so the mars-lint wirewidth analyzer can verify field
// symmetry, and N is the codec's declared WireBytes() (or HopBytes() for
// the per-hop entry), which the analyzer's codec check pins.

// Declared wire sizes. Mars11WireBytes mirrors the paper's constant; the
// equality is asserted by TestMars11MatchesDataplane.
const (
	// Mars11WireBytes is the paper's fixed telemetry header.
	Mars11WireBytes = 11
	// SampledWireBytes reuses the mars11 layout; the promotion stride
	// rides in the spare bits of the flags byte.
	SampledWireBytes = 11
	// PintlikeWireBytes is the mars11 base plus the 5-byte sampled hop
	// slot (switch 2, quantized depth 1, hop index 1, hop count 1).
	PintlikeWireBytes = 16
	// PerhopWireBytes is the perhop base header (mars11 layout); each
	// traversed hop appends PerhopHopBytes more.
	PerhopWireBytes = 11
	// PerhopHopBytes is one per-hop INT stack entry (switch 2, queue 2,
	// time since source 4).
	PerhopHopBytes = 8
)

// MarshalMars11 encodes the base telemetry header into the paper's
// 11-byte wire form, bit-for-bit the layout of dataplane.MarshalINT:
//
//	0:4  compressed source timestamp (µs, low 32 bits)
//	4:6  last-epoch packet count (saturating uint16)
//	6:8  total queue depth (saturating uint16)
//	8:10 epoch ID (low 16 bits)
//	10   flags (bit 0: anomaly-flagged)
func MarshalMars11(h *dataplane.INTHeader) [Mars11WireBytes]byte {
	var b [Mars11WireBytes]byte
	binary.BigEndian.PutUint32(b[0:4], dataplane.CompressTimestamp(h.SourceTS))
	binary.BigEndian.PutUint16(b[4:6], sat16(h.LastEpochCount))
	binary.BigEndian.PutUint16(b[6:8], sat16(h.TotalQueueDepth))
	binary.BigEndian.PutUint16(b[8:10], uint16(h.EpochID))
	if h.Flagged {
		b[10] = 1
	}
	return b
}

// UnmarshalMars11 decodes the 11-byte base header; now anchors timestamp
// recovery and epochHint anchors epoch expansion.
func UnmarshalMars11(b [Mars11WireBytes]byte, now netsim.Time, epochHint uint32) *dataplane.INTHeader {
	return &dataplane.INTHeader{
		SourceTS:        dataplane.DecompressTimestamp(binary.BigEndian.Uint32(b[0:4]), now),
		LastEpochCount:  uint32(binary.BigEndian.Uint16(b[4:6])),
		TotalQueueDepth: uint32(binary.BigEndian.Uint16(b[6:8])),
		EpochID:         expandEpoch(binary.BigEndian.Uint16(b[8:10]), epochHint),
		Flagged:         b[10]&1 != 0,
	}
}

// MarshalSampled encodes the mars11 layout with the promotion stride in
// the spare flag bits:
//
//	0:4  compressed source timestamp
//	4:6  last-epoch packet count (sat)
//	6:8  total queue depth (sat)
//	8:10 epoch ID (low 16 bits)
//	10   bit 0: anomaly-flagged; bits 1..7: epoch stride
func MarshalSampled(h *dataplane.INTHeader, stride uint32) [SampledWireBytes]byte {
	var b [SampledWireBytes]byte
	binary.BigEndian.PutUint32(b[0:4], dataplane.CompressTimestamp(h.SourceTS))
	binary.BigEndian.PutUint16(b[4:6], sat16(h.LastEpochCount))
	binary.BigEndian.PutUint16(b[6:8], sat16(h.TotalQueueDepth))
	binary.BigEndian.PutUint16(b[8:10], uint16(h.EpochID))
	flags := sat7(stride) << 1
	if h.Flagged {
		flags |= 1
	}
	b[10] = flags
	return b
}

// UnmarshalSampled decodes the sampled layout, returning the header and
// the carried stride.
func UnmarshalSampled(b [SampledWireBytes]byte, now netsim.Time, epochHint uint32) (*dataplane.INTHeader, uint32) {
	h := &dataplane.INTHeader{
		SourceTS:        dataplane.DecompressTimestamp(binary.BigEndian.Uint32(b[0:4]), now),
		LastEpochCount:  uint32(binary.BigEndian.Uint16(b[4:6])),
		TotalQueueDepth: uint32(binary.BigEndian.Uint16(b[6:8])),
		EpochID:         expandEpoch(binary.BigEndian.Uint16(b[8:10]), epochHint),
		Flagged:         b[10]&1 != 0,
	}
	return h, uint32(b[10] >> 1)
}

// MarshalPintlike encodes the mars11 base plus the probabilistic hop
// slot:
//
//	0:10  mars11 base fields (see MarshalMars11)
//	10    flags (bit 0: anomaly-flagged)
//	11:13 slot switch ID (saturating uint16)
//	13    slot queue depth, quantized (saturating uint8)
//	14    slot hop index (1-based; 0 = empty slot)
//	15    hops traversed so far
func MarshalPintlike(h *dataplane.INTHeader) [PintlikeWireBytes]byte {
	var b [PintlikeWireBytes]byte
	binary.BigEndian.PutUint32(b[0:4], dataplane.CompressTimestamp(h.SourceTS))
	binary.BigEndian.PutUint16(b[4:6], sat16(h.LastEpochCount))
	binary.BigEndian.PutUint16(b[6:8], sat16(h.TotalQueueDepth))
	binary.BigEndian.PutUint16(b[8:10], uint16(h.EpochID))
	if h.Flagged {
		b[10] = 1
	}
	var hs HopSample
	if s, ok := h.Ext.(*HopSample); ok && s != nil {
		hs = *s
	}
	binary.BigEndian.PutUint16(b[11:13], sat16(uint32(hs.Switch)))
	b[13] = sat8(hs.Depth)
	b[14] = hs.Index
	b[15] = hs.Count
	return b
}

// UnmarshalPintlike decodes the 16-byte pintlike form. An empty slot
// (index 0) yields a nil Ext.
func UnmarshalPintlike(b [PintlikeWireBytes]byte, now netsim.Time, epochHint uint32) *dataplane.INTHeader {
	h := &dataplane.INTHeader{
		SourceTS:        dataplane.DecompressTimestamp(binary.BigEndian.Uint32(b[0:4]), now),
		LastEpochCount:  uint32(binary.BigEndian.Uint16(b[4:6])),
		TotalQueueDepth: uint32(binary.BigEndian.Uint16(b[6:8])),
		EpochID:         expandEpoch(binary.BigEndian.Uint16(b[8:10]), epochHint),
		Flagged:         b[10]&1 != 0,
	}
	if b[14] != 0 {
		h.Ext = &HopSample{
			Switch: topology.NodeID(binary.BigEndian.Uint16(b[11:13])),
			Depth:  uint32(b[13]),
			Index:  b[14],
			Count:  b[15],
		}
	}
	return h
}

// MarshalPerhop encodes the perhop codec's base header (the mars11
// layout; the hop stack follows as PerhopHopBytes entries appended by
// perhopCodec.Marshal).
func MarshalPerhop(h *dataplane.INTHeader) [PerhopWireBytes]byte {
	var b [PerhopWireBytes]byte
	binary.BigEndian.PutUint32(b[0:4], dataplane.CompressTimestamp(h.SourceTS))
	binary.BigEndian.PutUint16(b[4:6], sat16(h.LastEpochCount))
	binary.BigEndian.PutUint16(b[6:8], sat16(h.TotalQueueDepth))
	binary.BigEndian.PutUint16(b[8:10], uint16(h.EpochID))
	if h.Flagged {
		b[10] = 1
	}
	return b
}

// UnmarshalPerhop decodes the perhop base header (hop entries are decoded
// separately by UnmarshalPerhopHop).
func UnmarshalPerhop(b [PerhopWireBytes]byte, now netsim.Time, epochHint uint32) *dataplane.INTHeader {
	return &dataplane.INTHeader{
		SourceTS:        dataplane.DecompressTimestamp(binary.BigEndian.Uint32(b[0:4]), now),
		LastEpochCount:  uint32(binary.BigEndian.Uint16(b[4:6])),
		TotalQueueDepth: uint32(binary.BigEndian.Uint16(b[6:8])),
		EpochID:         expandEpoch(binary.BigEndian.Uint16(b[8:10]), epochHint),
		Flagged:         b[10]&1 != 0,
	}
}

// MarshalPerhopHop encodes one INT stack entry:
//
//	0:2 switch ID (saturating uint16)
//	2:4 egress queue depth (saturating uint16)
//	4:8 time since source entry (µs)
func MarshalPerhopHop(hp *Hop) [PerhopHopBytes]byte {
	var b [PerhopHopBytes]byte
	binary.BigEndian.PutUint16(b[0:2], sat16(uint32(hp.Switch)))
	binary.BigEndian.PutUint16(b[2:4], sat16(hp.Queue))
	binary.BigEndian.PutUint32(b[4:8], hp.SinceSourceUS)
	return b
}

// UnmarshalPerhopHop decodes one INT stack entry.
func UnmarshalPerhopHop(b [PerhopHopBytes]byte) Hop {
	return Hop{
		Switch:        topology.NodeID(binary.BigEndian.Uint16(b[0:2])),
		Queue:         uint32(binary.BigEndian.Uint16(b[2:4])),
		SinceSourceUS: binary.BigEndian.Uint32(b[4:8]),
	}
}

// wireLen validates an exact expected length.
func wireLen(name string, b []byte, want int) error {
	if len(b) != want {
		return fmt.Errorf("telemetry: %s wire form is %d bytes, want %d", name, len(b), want)
	}
	return nil
}

// expandEpoch recovers a full 32-bit epoch from its low 16 bits relative
// to the receiver's current epoch (same recovery as dataplane's decoder).
func expandEpoch(low uint16, hint uint32) uint32 {
	base := hint &^ 0xFFFF
	cand := base | uint32(low)
	if cand > hint {
		if base == 0 {
			return cand
		}
		cand -= 1 << 16
	}
	return cand
}

func sat16(v uint32) uint16 {
	if v > 0xFFFF {
		return 0xFFFF
	}
	return uint16(v)
}

func sat8(v uint32) uint8 {
	if v > 0xFF {
		return 0xFF
	}
	return uint8(v)
}

func sat7(v uint32) uint8 {
	if v > 0x7F {
		return 0x7F
	}
	return uint8(v)
}
