package telemetry

import (
	"reflect"
	"testing"

	"mars/internal/dataplane"
	"mars/internal/netsim"
)

// The per-codec fuzz targets mirror dataplane's FuzzWireRoundTrip: each
// codec's decoder must never panic on arbitrary wire bytes, and must be
// idempotent — decode(encode(decode(b))) == decode(b) under the same
// anchors. Raw bytes are only compared where the layout defines every bit
// (reserved bits are legitimately dropped on re-encode).

// FuzzMars11RoundTrip anchors the paper's 11-byte layout.
func FuzzMars11RoundTrip(f *testing.F) {
	f.Add(make([]byte, Mars11WireBytes), int64(0), uint32(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 0x81}, int64(3*netsim.Second), uint32(70000))
	f.Fuzz(func(t *testing.T, raw []byte, nowRaw int64, epochHint uint32) {
		var b [Mars11WireBytes]byte
		copy(b[:], raw)
		if nowRaw < 0 {
			nowRaw = 0 // the codecs' contract is a non-negative clock
		}
		now := netsim.Time(nowRaw)

		h := UnmarshalMars11(b, now, epochHint)
		b2 := MarshalMars11(h)
		if !reflect.DeepEqual(h, UnmarshalMars11(b2, now, epochHint)) {
			t.Fatalf("mars11 codec not idempotent: b=%v h=%+v b2=%v", b, h, b2)
		}
		// The layout is bit-identical to dataplane.MarshalINT, so both
		// encoders must agree on every header.
		if db := dataplane.MarshalINT(h); b2 != db {
			t.Fatalf("mars11 diverged from dataplane layout: %v vs %v", b2, db)
		}
		for i := 0; i < Mars11WireBytes-1; i++ {
			if b2[i] != b[i] {
				t.Fatalf("byte %d changed across re-encode: %#x -> %#x", i, b[i], b2[i])
			}
		}
		if b2[10] != b[10]&1 {
			t.Fatalf("flags byte %#x re-encoded as %#x, want %#x", b[10], b2[10], b[10]&1)
		}
	})
}

// FuzzSampledRoundTrip additionally carries the stride in the spare flag
// bits, so the whole flags byte must survive re-encoding.
func FuzzSampledRoundTrip(f *testing.F) {
	f.Add(make([]byte, SampledWireBytes), int64(0), uint32(0))
	f.Add([]byte{0, 0, 1, 0, 0, 9, 0, 4, 0, 2, 0x05}, int64(netsim.Second), uint32(300))
	f.Fuzz(func(t *testing.T, raw []byte, nowRaw int64, epochHint uint32) {
		var b [SampledWireBytes]byte
		copy(b[:], raw)
		if nowRaw < 0 {
			nowRaw = 0
		}
		now := netsim.Time(nowRaw)

		h, stride := UnmarshalSampled(b, now, epochHint)
		b2 := MarshalSampled(h, stride)
		h2, stride2 := UnmarshalSampled(b2, now, epochHint)
		if !reflect.DeepEqual(h, h2) || stride != stride2 {
			t.Fatalf("sampled codec not idempotent: b=%v h=%+v stride=%d b2=%v stride2=%d", b, h, stride, b2, stride2)
		}
		if b2 != b {
			t.Fatalf("sampled layout defines all 11 bytes but re-encode changed them: %v -> %v", b, b2)
		}
	})
}

// FuzzPintlikeRoundTrip covers the 16-byte probabilistic-slot form. An
// empty slot (hop index 0) decodes to a nil Ext and zeroes the slot bytes
// on re-encode, so only header-level idempotence is asserted.
func FuzzPintlikeRoundTrip(f *testing.F) {
	f.Add(make([]byte, PintlikeWireBytes), int64(0), uint32(0))
	f.Add([]byte{0, 0, 0, 9, 0, 3, 0, 8, 0, 1, 1, 0, 12, 7, 2, 4}, int64(2*netsim.Second), uint32(41))
	f.Fuzz(func(t *testing.T, raw []byte, nowRaw int64, epochHint uint32) {
		var b [PintlikeWireBytes]byte
		copy(b[:], raw)
		if nowRaw < 0 {
			nowRaw = 0
		}
		now := netsim.Time(nowRaw)

		h := UnmarshalPintlike(b, now, epochHint)
		b2 := MarshalPintlike(h)
		h2 := UnmarshalPintlike(b2, now, epochHint)
		if !reflect.DeepEqual(h, h2) {
			t.Fatalf("pintlike codec not idempotent:\n b=%v -> %+v\nb2=%v -> %+v", b, h, b2, h2)
		}
		if b[14] != 0 && b2 != b && b2[10] == b[10] {
			// With a populated slot every byte except the flags byte is
			// defined, so nothing else may drift.
			t.Fatalf("pintlike re-encode changed defined bytes: %v -> %v", b, b2)
		}
	})
}

// FuzzPerhopRoundTrip drives the variable-length classic-INT form through
// the codec-level Unmarshal: bad lengths must error (never panic), valid
// stacks must round-trip exactly.
func FuzzPerhopRoundTrip(f *testing.F) {
	f.Add(make([]byte, PerhopWireBytes), int64(0), uint32(0))
	f.Add(make([]byte, PerhopWireBytes+2*PerhopHopBytes), int64(netsim.Second), uint32(9))
	f.Add([]byte{1, 2, 3}, int64(0), uint32(0))
	f.Fuzz(func(t *testing.T, raw []byte, nowRaw int64, epochHint uint32) {
		if nowRaw < 0 {
			nowRaw = 0
		}
		now := netsim.Time(nowRaw)
		c, err := New("perhop", 1)
		if err != nil {
			t.Fatal(err)
		}
		h, err := c.Unmarshal(raw, now, epochHint)
		if len(raw) < PerhopWireBytes || (len(raw)-PerhopWireBytes)%PerhopHopBytes != 0 {
			if err == nil {
				t.Fatalf("%d bytes decoded without error", len(raw))
			}
			return
		}
		if err != nil {
			t.Fatalf("valid length %d failed to decode: %v", len(raw), err)
		}
		b2 := c.Marshal(h)
		hops := (len(raw) - PerhopWireBytes) / PerhopHopBytes
		if want := c.WireBytes() + hops*c.HopBytes(); len(b2) != want {
			t.Fatalf("re-encode of %d-hop stack is %d bytes, want %d", hops, len(b2), want)
		}
		h2, err := c.Unmarshal(b2, now, epochHint)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(h, h2) {
			t.Fatalf("perhop codec not idempotent:\n%+v\n%+v", h, h2)
		}
	})
}
