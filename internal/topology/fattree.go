package topology

import "fmt"

// FatTree describes a K-ary fat-tree topology (Al-Fares et al.), the
// structure used by the paper's Mininet evaluation (Fig. 6 is the K=4
// instance: 4 core, 8 aggregation, 8 edge switches, 16 hosts).
type FatTree struct {
	*Topology
	// K is the arity; must be even and >= 2.
	K int
	// CoreIDs, AggIDs, EdgeIDs, HostIDs list the node IDs per tier in
	// construction order.
	CoreIDs []NodeID
	AggIDs  []NodeID
	EdgeIDs []NodeID
	HostIDs []NodeID
}

// NewFatTree builds a K-ary fat-tree:
//
//   - (K/2)^2 core switches
//   - K pods, each with K/2 aggregation and K/2 edge switches
//   - each edge switch hosts K/2 end hosts
//
// Total: K^2*5/4 switches and K^3/4 hosts.
func NewFatTree(k int) (*FatTree, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree arity must be even and >= 2, got %d", k)
	}
	b := NewBuilder()
	ft := &FatTree{K: k}
	half := k / 2

	for i := 0; i < half*half; i++ {
		ft.CoreIDs = append(ft.CoreIDs, b.AddSwitch(fmt.Sprintf("core%d", i), LayerCore))
	}
	for pod := 0; pod < k; pod++ {
		podAggs := make([]NodeID, 0, half)
		for a := 0; a < half; a++ {
			id := b.AddSwitch(fmt.Sprintf("agg%d_%d", pod, a), LayerAggregation)
			ft.AggIDs = append(ft.AggIDs, id)
			podAggs = append(podAggs, id)
			// Aggregation switch a of each pod connects to core switches
			// a*half .. a*half+half-1.
			for c := 0; c < half; c++ {
				b.Connect(id, ft.CoreIDs[a*half+c])
			}
		}
		for e := 0; e < half; e++ {
			id := b.AddSwitch(fmt.Sprintf("edge%d_%d", pod, e), LayerEdge)
			ft.EdgeIDs = append(ft.EdgeIDs, id)
			for _, agg := range podAggs {
				b.Connect(id, agg)
			}
			for h := 0; h < half; h++ {
				hid := b.AddHost(fmt.Sprintf("h%d_%d_%d", pod, e, h))
				ft.HostIDs = append(ft.HostIDs, hid)
				b.Connect(id, hid)
			}
		}
	}
	t, err := b.Build()
	if err != nil {
		return nil, err
	}
	ft.Topology = t
	return ft, nil
}

// FatTreeDims are the closed-form counts of a K-ary fat-tree. The scale
// tier's k=16/k=32 constructors are validated against these instead of
// path enumeration: AllEdgePairPaths is O(K^6)-ish and already enumerates
// ~67M paths at k=32, while every count below follows from the arity alone.
type FatTreeDims struct {
	K int
	// Per-tier switch counts.
	Core, Agg, Edge int
	// Switches = Core + Agg + Edge; Hosts = K^3/4.
	Switches, Hosts int
	// Links by tier boundary: core-agg, agg-edge, edge-host.
	CoreAggLinks, AggEdgeLinks, HostLinks, Links int
	// ECMP shortest-path counts between two distinct edge switches:
	// K/2 paths within a pod (one per aggregation switch), (K/2)^2 across
	// pods (one per core switch).
	SamePodPaths, CrossPodPaths int
}

// Dims returns the closed-form dimension table for arity k.
func Dims(k int) FatTreeDims {
	half := k / 2
	d := FatTreeDims{
		K:    k,
		Core: half * half,
		Agg:  k * half,
		Edge: k * half,
		// Each agg connects to K/2 cores; each edge to K/2 aggs; each edge
		// hosts K/2 end hosts.
		CoreAggLinks:  k * half * half,
		AggEdgeLinks:  k * half * half,
		HostLinks:     k * half * half,
		SamePodPaths:  half,
		CrossPodPaths: half * half,
	}
	d.Switches = d.Core + d.Agg + d.Edge
	d.Hosts = d.HostLinks
	d.Links = d.CoreAggLinks + d.AggEdgeLinks + d.HostLinks
	return d
}

// Dims returns the tree's closed-form dimension table.
func (ft *FatTree) Dims() FatTreeDims { return Dims(ft.K) }

// PodOf returns the pod index of an aggregation or edge switch, or -1 for
// core switches and hosts.
func (ft *FatTree) PodOf(id NodeID) int {
	half := ft.K / 2
	for i, a := range ft.AggIDs {
		if a == id {
			return i / half
		}
	}
	for i, e := range ft.EdgeIDs {
		if e == id {
			return i / half
		}
	}
	return -1
}

// CountEdgePairPaths returns the number of distinct shortest paths between
// ordered pairs of edge switches, broken down by hop count. For K=4 the
// paper reports 8 one-hop... the published breakdown counts unordered
// pairs with directionality folded; this helper reports ordered-pair
// counts so tests can pin the combinatorics exactly.
func (ft *FatTree) CountEdgePairPaths() map[int]int {
	counts := make(map[int]int)
	for _, p := range ft.AllEdgePairPaths() {
		counts[len(p)]++
	}
	return counts
}
