package topology

import "testing"

// TestFatTreeDimsClosedForm validates the k=16 and k=32 scale
// constructors (and the small arities the rest of the suite leans on)
// against the closed-form dimension table: per-tier switch counts, link
// counts per tier boundary, host counts, and the ECMP shortest-path
// combinatorics between edge switches. Path counts are checked by BFS on
// sampled pairs rather than AllEdgePairPaths, which enumerates tens of
// millions of paths at k=32.
func TestFatTreeDimsClosedForm(t *testing.T) {
	for _, k := range []int{4, 8, 16, 32} {
		ft, err := NewFatTree(k)
		if err != nil {
			t.Fatal(err)
		}
		d := ft.Dims()
		half := k / 2
		if d.Core != half*half || d.Agg != k*half || d.Edge != k*half {
			t.Fatalf("k=%d: closed-form tier counts wrong: %+v", k, d)
		}
		if got := len(ft.CoreIDs); got != d.Core {
			t.Errorf("k=%d: %d core switches, want %d", k, got, d.Core)
		}
		if got := len(ft.AggIDs); got != d.Agg {
			t.Errorf("k=%d: %d aggregation switches, want %d", k, got, d.Agg)
		}
		if got := len(ft.EdgeIDs); got != d.Edge {
			t.Errorf("k=%d: %d edge switches, want %d", k, got, d.Edge)
		}
		if got := ft.NumSwitches(); got != d.Switches || d.Switches != 5*k*k/4 {
			t.Errorf("k=%d: %d switches, want %d (=5K^2/4)", k, got, d.Switches)
		}
		if got := ft.NumHosts(); got != d.Hosts || d.Hosts != k*k*k/4 {
			t.Errorf("k=%d: %d hosts, want %d (=K^3/4)", k, got, d.Hosts)
		}
		if got := len(ft.Links); got != d.Links || d.Links != 3*k*k*k/4 {
			t.Errorf("k=%d: %d links, want %d (=3K^3/4)", k, got, d.Links)
		}
		var coreAgg, aggEdge, host int
		for _, l := range ft.Links {
			a, b := ft.Node(l.A).Layer, ft.Node(l.B).Layer
			switch {
			case !ft.IsSwitch(l.A) || !ft.IsSwitch(l.B):
				host++
			case a == LayerCore || b == LayerCore:
				coreAgg++
			default:
				aggEdge++
			}
		}
		if coreAgg != d.CoreAggLinks || aggEdge != d.AggEdgeLinks || host != d.HostLinks {
			t.Errorf("k=%d: link tiers (%d,%d,%d), want (%d,%d,%d)",
				k, coreAgg, aggEdge, host, d.CoreAggLinks, d.AggEdgeLinks, d.HostLinks)
		}

		// ECMP path combinatorics on sampled edge pairs: K/2 two-hop paths
		// inside a pod (one per aggregation switch), (K/2)^2 four-hop paths
		// across pods (one per core switch).
		samePod := ft.AllShortestPaths(ft.EdgeIDs[0], ft.EdgeIDs[1])
		if len(samePod) != d.SamePodPaths {
			t.Errorf("k=%d: %d same-pod paths, want %d", k, len(samePod), d.SamePodPaths)
		}
		for _, p := range samePod {
			if len(p) != 3 {
				t.Fatalf("k=%d: same-pod path has %d hops, want 3: %v", k, len(p), p)
			}
		}
		crossPod := ft.AllShortestPaths(ft.EdgeIDs[0], ft.EdgeIDs[len(ft.EdgeIDs)-1])
		if len(crossPod) != d.CrossPodPaths {
			t.Errorf("k=%d: %d cross-pod paths, want %d", k, len(crossPod), d.CrossPodPaths)
		}
		for _, p := range crossPod {
			if len(p) != 5 {
				t.Fatalf("k=%d: cross-pod path has %d hops, want 5: %v", k, len(p), p)
			}
		}
	}
}
