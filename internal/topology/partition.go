package topology

import "fmt"

// Partition assigns every node to a simulation unit. Units are the
// granularity of the sharded event engine (internal/netsim): all state a
// packet event touches belongs to exactly one unit, so any grouping of
// units onto shards executes the same trace. The unit map must therefore
// be derived from the topology alone — never from the shard count — which
// is what makes sharded output invariant under the number of shards.
type Partition struct {
	// UnitOf maps NodeID -> unit index.
	UnitOf []int32
	// NumUnits is 1 + max(UnitOf).
	NumUnits int
}

// SingleUnit places every node in unit 0; the sharded engine degenerates
// to the sequential simulator (used by equivalence tests).
func SingleUnit(t *Topology) *Partition {
	return &Partition{UnitOf: make([]int32, len(t.Nodes)), NumUnits: 1}
}

// Validate checks the unit map covers exactly the topology's nodes with
// indices in [0, NumUnits).
func (p *Partition) Validate(t *Topology) error {
	if len(p.UnitOf) != len(t.Nodes) {
		return fmt.Errorf("topology: partition covers %d nodes, topology has %d", len(p.UnitOf), len(t.Nodes))
	}
	if p.NumUnits < 1 {
		return fmt.Errorf("topology: partition must have at least one unit, got %d", p.NumUnits)
	}
	for id, u := range p.UnitOf {
		if u < 0 || int(u) >= p.NumUnits {
			return fmt.Errorf("topology: node %d assigned out-of-range unit %d (NumUnits=%d)", id, u, p.NumUnits)
		}
		if t.IsHost(NodeID(id)) {
			if sw, ok := t.EdgeSwitchOf(NodeID(id)); ok && p.UnitOf[sw] != u {
				return fmt.Errorf("topology: host %d in unit %d but its edge switch %d is in unit %d", id, u, sw, p.UnitOf[sw])
			}
		}
	}
	return nil
}

// PodPartition maps a fat-tree onto its natural sharding units: pod p is
// unit p (aggregation + edge switches and their hosts), and the (K/2)^2
// core switches form K/2 additional units of K/2 cores each — core stripe
// c (the cores reached by aggregation position c of every pod) is unit
// K + c. Total units: K + K/2.
//
// Every host shares a unit with its edge switch, so the only events that
// cross units are link propagations between switches — which is exactly
// the conservative-lookahead guarantee the sharded engine relies on (a
// cross-unit event is always scheduled at least one propagation delay into
// the future).
func (ft *FatTree) PodPartition() *Partition {
	half := ft.K / 2
	p := &Partition{
		UnitOf:   make([]int32, len(ft.Nodes)),
		NumUnits: ft.K + half,
	}
	for i, id := range ft.CoreIDs {
		p.UnitOf[id] = int32(ft.K + i/half)
	}
	for i, id := range ft.AggIDs {
		p.UnitOf[id] = int32(i / half)
	}
	for i, id := range ft.EdgeIDs {
		p.UnitOf[id] = int32(i / half)
	}
	for _, h := range ft.HostIDs {
		sw, ok := ft.EdgeSwitchOf(h)
		if !ok {
			panic(fmt.Sprintf("topology: fat-tree host %d has no edge switch", h))
		}
		p.UnitOf[h] = p.UnitOf[sw]
	}
	return p
}
