package topology

import "testing"

// TestPodPartition pins the sharding unit map: pods are units 0..K-1,
// core stripes K..K+K/2-1, hosts share their edge switch's unit, and —
// the property the sharded engine's conservative lookahead rests on —
// every cross-unit link connects two switches, so cross-unit events are
// always link propagations with a full PropDelay of lookahead.
func TestPodPartition(t *testing.T) {
	for _, k := range []int{4, 16} {
		ft, err := NewFatTree(k)
		if err != nil {
			t.Fatal(err)
		}
		p := ft.PodPartition()
		if err := p.Validate(ft.Topology); err != nil {
			t.Fatal(err)
		}
		half := k / 2
		if p.NumUnits != k+half {
			t.Fatalf("k=%d: %d units, want %d pods + %d core stripes", k, p.NumUnits, k, half)
		}
		perUnit := make([]int, p.NumUnits)
		for _, u := range p.UnitOf {
			perUnit[u]++
		}
		for u, n := range perUnit {
			want := 2*half + half*half // agg + edge + hosts per pod
			if u >= k {
				want = half // cores per stripe
			}
			if n != want {
				t.Errorf("k=%d: unit %d holds %d nodes, want %d", k, u, n, want)
			}
		}
		for i, a := range ft.AggIDs {
			if got := p.UnitOf[a]; got != int32(i/half) {
				t.Errorf("k=%d: agg %d in unit %d, want pod %d", k, a, got, i/half)
			}
		}
		for _, l := range ft.Links {
			if p.UnitOf[l.A] != p.UnitOf[l.B] && (!ft.IsSwitch(l.A) || !ft.IsSwitch(l.B)) {
				t.Errorf("k=%d: host link %d-%d crosses units %d/%d",
					k, l.A, l.B, p.UnitOf[l.A], p.UnitOf[l.B])
			}
		}
	}
}

// TestSingleUnitPartition checks the degenerate map used by the
// classic-equivalence tests.
func TestSingleUnitPartition(t *testing.T) {
	ft, err := NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	p := SingleUnit(ft.Topology)
	if err := p.Validate(ft.Topology); err != nil {
		t.Fatal(err)
	}
	if p.NumUnits != 1 {
		t.Fatalf("NumUnits = %d, want 1", p.NumUnits)
	}
	for id, u := range p.UnitOf {
		if u != 0 {
			t.Fatalf("node %d in unit %d, want 0", id, u)
		}
	}
}
