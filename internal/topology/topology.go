// Package topology models the physical network graph MARS operates on:
// switches, hosts, ports, and links, together with builders for standard
// data-center topologies (fat-tree) and ECMP path enumeration.
//
// The topology is static for the lifetime of a simulation. Node and port
// identifiers are small dense integers so that the simulator and the
// data-plane tables can index arrays instead of maps on hot paths.
package topology

import (
	"fmt"
	"sort"
)

// NodeID identifies a switch or host in the topology. IDs are dense,
// starting at 0, switches first, then hosts.
type NodeID int32

// PortID identifies a port local to one node. Ports are dense per node,
// starting at 0.
type PortID int32

// NodeKind distinguishes forwarding devices from end hosts.
type NodeKind uint8

const (
	// KindSwitch is a forwarding device running a data-plane pipeline.
	KindSwitch NodeKind = iota
	// KindHost is an end host that sources and sinks traffic.
	KindHost
)

func (k NodeKind) String() string {
	switch k {
	case KindSwitch:
		return "switch"
	case KindHost:
		return "host"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// Layer classifies switches of a tiered data-center topology. Hosts have
// LayerHost; topologies without tiers use LayerUnknown.
type Layer uint8

const (
	// LayerUnknown marks nodes of topologies without tier information.
	LayerUnknown Layer = iota
	// LayerCore is the top tier of a fat-tree.
	LayerCore
	// LayerAggregation is the middle tier of a fat-tree pod.
	LayerAggregation
	// LayerEdge is the bottom switch tier (ToR) of a fat-tree pod.
	LayerEdge
	// LayerHost marks end hosts.
	LayerHost
)

func (l Layer) String() string {
	switch l {
	case LayerCore:
		return "core"
	case LayerAggregation:
		return "aggregation"
	case LayerEdge:
		return "edge"
	case LayerHost:
		return "host"
	case LayerUnknown:
		return "unknown"
	default:
		return "unknown"
	}
}

// Node is one device in the topology.
type Node struct {
	ID    NodeID
	Kind  NodeKind
	Layer Layer
	Name  string
	// Ports[i] describes the link attached to local port i.
	Ports []Port
}

// Degree returns the number of attached links.
func (n *Node) Degree() int { return len(n.Ports) }

// Port describes one end of a link from the owning node's perspective.
type Port struct {
	// Peer is the node on the other end of the link.
	Peer NodeID
	// PeerPort is the port index on the peer.
	PeerPort PortID
	// Link indexes Topology.Links.
	Link LinkID
}

// LinkID identifies an undirected link.
type LinkID int32

// Link is an undirected edge between two node/port pairs.
type Link struct {
	ID    LinkID
	A, B  NodeID
	APort PortID
	BPort PortID
}

// Other returns the endpoint of the link opposite to from.
func (l Link) Other(from NodeID) NodeID {
	if from == l.A {
		return l.B
	}
	return l.A
}

// Topology is an immutable network graph.
type Topology struct {
	Nodes []Node
	Links []Link

	numSwitches int
	numHosts    int
}

// NumSwitches returns the count of switch nodes.
func (t *Topology) NumSwitches() int { return t.numSwitches }

// NumHosts returns the count of host nodes.
func (t *Topology) NumHosts() int { return t.numHosts }

// Switches returns the IDs of all switch nodes in ascending order.
func (t *Topology) Switches() []NodeID {
	ids := make([]NodeID, 0, t.numSwitches)
	for i := range t.Nodes {
		if t.Nodes[i].Kind == KindSwitch {
			ids = append(ids, t.Nodes[i].ID)
		}
	}
	return ids
}

// Hosts returns the IDs of all host nodes in ascending order.
func (t *Topology) Hosts() []NodeID {
	ids := make([]NodeID, 0, t.numHosts)
	for i := range t.Nodes {
		if t.Nodes[i].Kind == KindHost {
			ids = append(ids, t.Nodes[i].ID)
		}
	}
	return ids
}

// Node returns the node with the given ID. It panics if id is out of range.
func (t *Topology) Node(id NodeID) *Node { return &t.Nodes[id] }

// IsSwitch reports whether id names a switch.
func (t *Topology) IsSwitch(id NodeID) bool {
	return int(id) < len(t.Nodes) && t.Nodes[id].Kind == KindSwitch
}

// IsHost reports whether id names a host.
func (t *Topology) IsHost(id NodeID) bool {
	return int(id) < len(t.Nodes) && t.Nodes[id].Kind == KindHost
}

// PortTo returns the local port on from that leads to neighbor to.
// ok is false if the nodes are not adjacent.
func (t *Topology) PortTo(from, to NodeID) (PortID, bool) {
	n := &t.Nodes[from]
	for i := range n.Ports {
		if n.Ports[i].Peer == to {
			return PortID(i), true
		}
	}
	return 0, false
}

// Neighbors returns the IDs adjacent to id, in port order.
func (t *Topology) Neighbors(id NodeID) []NodeID {
	n := &t.Nodes[id]
	out := make([]NodeID, len(n.Ports))
	for i := range n.Ports {
		out[i] = n.Ports[i].Peer
	}
	return out
}

// LinkBetween returns the link connecting a and b (in either orientation).
// ok is false if the nodes are not adjacent.
func (t *Topology) LinkBetween(a, b NodeID) (LinkID, bool) {
	n := &t.Nodes[a]
	for i := range n.Ports {
		if n.Ports[i].Peer == b {
			return n.Ports[i].Link, true
		}
	}
	return 0, false
}

// InterSwitchLinks lists the IDs of links whose endpoints are both
// switches, in ascending link order. These are the links the gray-failure
// scenarios (link down, flapping) draw from: host access links are
// excluded because killing one just silences its host.
func (t *Topology) InterSwitchLinks() []LinkID {
	var out []LinkID
	for _, l := range t.Links {
		if t.IsSwitch(l.A) && t.IsSwitch(l.B) {
			out = append(out, l.ID)
		}
	}
	return out
}

// EdgeSwitchOf returns the edge switch a host is attached to. It returns
// ok=false if id is not a host or the host has no switch neighbor.
func (t *Topology) EdgeSwitchOf(host NodeID) (NodeID, bool) {
	if !t.IsHost(host) {
		return 0, false
	}
	for _, p := range t.Nodes[host].Ports {
		if t.IsSwitch(p.Peer) {
			return p.Peer, true
		}
	}
	return 0, false
}

// Validate checks structural invariants: symmetric port wiring and
// consistent link endpoints. It is intended for tests and builders.
func (t *Topology) Validate() error {
	for li := range t.Links {
		l := &t.Links[li]
		if int(l.A) >= len(t.Nodes) || int(l.B) >= len(t.Nodes) {
			return fmt.Errorf("link %d references missing node", l.ID)
		}
		pa := t.Nodes[l.A].Ports
		pb := t.Nodes[l.B].Ports
		if int(l.APort) >= len(pa) || int(l.BPort) >= len(pb) {
			return fmt.Errorf("link %d references missing port", l.ID)
		}
		if pa[l.APort].Peer != l.B || pa[l.APort].PeerPort != l.BPort {
			return fmt.Errorf("link %d: port %d of node %d not wired to %d/%d", l.ID, l.APort, l.A, l.B, l.BPort)
		}
		if pb[l.BPort].Peer != l.A || pb[l.BPort].PeerPort != l.APort {
			return fmt.Errorf("link %d: port %d of node %d not wired to %d/%d", l.ID, l.BPort, l.B, l.A, l.APort)
		}
	}
	for ni := range t.Nodes {
		n := &t.Nodes[ni]
		if n.ID != NodeID(ni) {
			return fmt.Errorf("node %d has inconsistent ID %d", ni, n.ID)
		}
		for pi := range n.Ports {
			p := &n.Ports[pi]
			if int(p.Link) >= len(t.Links) {
				return fmt.Errorf("node %d port %d references missing link", ni, pi)
			}
			l := &t.Links[p.Link]
			if l.A != n.ID && l.B != n.ID {
				return fmt.Errorf("node %d port %d references foreign link %d", ni, pi, p.Link)
			}
		}
	}
	return nil
}

// Builder incrementally constructs a Topology.
type Builder struct {
	nodes []Node
	links []Link
}

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder { return &Builder{} }

// AddSwitch appends a switch node and returns its ID.
func (b *Builder) AddSwitch(name string, layer Layer) NodeID {
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{ID: id, Kind: KindSwitch, Layer: layer, Name: name})
	return id
}

// AddHost appends a host node and returns its ID.
func (b *Builder) AddHost(name string) NodeID {
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{ID: id, Kind: KindHost, Layer: LayerHost, Name: name})
	return id
}

// Connect wires a new undirected link between a and b, allocating the next
// free port on each side, and returns the link ID.
func (b *Builder) Connect(a, c NodeID) LinkID {
	lid := LinkID(len(b.links))
	ap := PortID(len(b.nodes[a].Ports))
	cp := PortID(len(b.nodes[c].Ports))
	b.nodes[a].Ports = append(b.nodes[a].Ports, Port{Peer: c, PeerPort: cp, Link: lid})
	b.nodes[c].Ports = append(b.nodes[c].Ports, Port{Peer: a, PeerPort: ap, Link: lid})
	b.links = append(b.links, Link{ID: lid, A: a, B: c, APort: ap, BPort: cp})
	return lid
}

// Build finalizes the topology. The builder must not be reused afterwards.
func (b *Builder) Build() (*Topology, error) {
	t := &Topology{Nodes: b.nodes, Links: b.links}
	for i := range t.Nodes {
		switch t.Nodes[i].Kind {
		case KindSwitch:
			t.numSwitches++
		case KindHost:
			t.numHosts++
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Path is a sequence of switch IDs a packet traverses, source switch first,
// sink switch last. Host endpoints are not part of the path: MARS's FlowID
// is ⟨s_source, s_sink⟩ and its diagnosis operates on switch sequences.
type Path []NodeID

// Equal reports whether two paths are identical.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Contains reports whether sub occurs as a contiguous subsequence of p.
func (p Path) Contains(sub []NodeID) bool {
	if len(sub) == 0 {
		return true
	}
	if len(sub) > len(p) {
		return false
	}
outer:
	for i := 0; i+len(sub) <= len(p); i++ {
		for j := range sub {
			if p[i+j] != sub[j] {
				continue outer
			}
		}
		return true
	}
	return false
}

// Clone returns a copy of the path.
func (p Path) Clone() Path {
	q := make(Path, len(p))
	copy(q, p)
	return q
}

func (p Path) String() string {
	s := "<"
	for i, n := range p {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("s%d", n)
	}
	return s + ">"
}

// AllShortestPaths enumerates every shortest switch-level path from src to
// dst (both switches), in deterministic order. It performs a BFS layering
// followed by a DFS over predecessor sets.
func (t *Topology) AllShortestPaths(src, dst NodeID) []Path {
	if src == dst {
		return []Path{{src}}
	}
	dist := make([]int32, len(t.Nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			continue
		}
		for _, p := range t.Nodes[u].Ports {
			v := p.Peer
			if t.Nodes[v].Kind != KindSwitch {
				continue
			}
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	if dist[dst] == -1 {
		return nil
	}
	// Backtrack from dst along strictly decreasing distance.
	var paths []Path
	cur := make(Path, 0, dist[dst]+1)
	var dfs func(v NodeID)
	dfs = func(v NodeID) {
		cur = append(cur, v)
		if v == src {
			rev := make(Path, len(cur))
			for i := range cur {
				rev[i] = cur[len(cur)-1-i]
			}
			paths = append(paths, rev)
		} else {
			// Deterministic order: ascending neighbor ID.
			prev := make([]NodeID, 0, 4)
			for _, p := range t.Nodes[v].Ports {
				u := p.Peer
				if t.Nodes[u].Kind == KindSwitch && dist[u] == dist[v]-1 {
					prev = append(prev, u)
				}
			}
			sort.Slice(prev, func(i, j int) bool { return prev[i] < prev[j] })
			for _, u := range prev {
				dfs(u)
			}
		}
		cur = cur[:len(cur)-1]
	}
	dfs(dst)
	return paths
}

// AllEdgePairPaths enumerates the shortest paths between every ordered pair
// of edge switches (including the trivial one-switch "path" when source and
// sink coincide, which corresponds to intra-rack traffic). The result is
// keyed deterministically in ascending (src, dst) order.
func (t *Topology) AllEdgePairPaths() []Path {
	var edges []NodeID
	for i := range t.Nodes {
		if t.Nodes[i].Kind == KindSwitch && t.Nodes[i].Layer == LayerEdge {
			edges = append(edges, t.Nodes[i].ID)
		}
	}
	if len(edges) == 0 {
		// Topologies without layer info: use all switches.
		edges = t.Switches()
	}
	var out []Path
	for _, s := range edges {
		for _, d := range edges {
			if s == d {
				continue
			}
			out = append(out, t.AllShortestPaths(s, d)...)
		}
	}
	return out
}
