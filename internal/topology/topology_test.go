package topology

import (
	"testing"
	"testing/quick"
)

func TestBuilderWiring(t *testing.T) {
	b := NewBuilder()
	s0 := b.AddSwitch("s0", LayerEdge)
	s1 := b.AddSwitch("s1", LayerEdge)
	h0 := b.AddHost("h0")
	l0 := b.Connect(s0, s1)
	l1 := b.Connect(s0, h0)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if topo.NumSwitches() != 2 || topo.NumHosts() != 1 {
		t.Fatalf("got %d switches %d hosts", topo.NumSwitches(), topo.NumHosts())
	}
	if got := topo.Links[l0].Other(s0); got != s1 {
		t.Errorf("Other(s0) = %d, want %d", got, s1)
	}
	if p, ok := topo.PortTo(s0, s1); !ok || p != 0 {
		t.Errorf("PortTo(s0,s1) = %d,%v", p, ok)
	}
	if p, ok := topo.PortTo(s0, h0); !ok || p != 1 {
		t.Errorf("PortTo(s0,h0) = %d,%v", p, ok)
	}
	if _, ok := topo.PortTo(s1, h0); ok {
		t.Errorf("PortTo(s1,h0) should not exist")
	}
	_ = l1
}

func TestEdgeSwitchOf(t *testing.T) {
	b := NewBuilder()
	s0 := b.AddSwitch("s0", LayerEdge)
	h0 := b.AddHost("h0")
	b.Connect(s0, h0)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sw, ok := topo.EdgeSwitchOf(h0)
	if !ok || sw != s0 {
		t.Errorf("EdgeSwitchOf(h0) = %d,%v; want %d,true", sw, ok, s0)
	}
	if _, ok := topo.EdgeSwitchOf(s0); ok {
		t.Error("EdgeSwitchOf on a switch should fail")
	}
}

func TestFatTreeSizes(t *testing.T) {
	for _, k := range []int{2, 4, 6, 8} {
		ft, err := NewFatTree(k)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		wantSwitches := k*k*5/4 + 0
		// (K/2)^2 core + K*K/2 agg + K*K/2 edge.
		wantCore := (k / 2) * (k / 2)
		wantAgg := k * k / 2
		wantEdge := k * k / 2
		wantHosts := k * k * k / 4
		if got := len(ft.CoreIDs); got != wantCore {
			t.Errorf("K=%d: core = %d, want %d", k, got, wantCore)
		}
		if got := len(ft.AggIDs); got != wantAgg {
			t.Errorf("K=%d: agg = %d, want %d", k, got, wantAgg)
		}
		if got := len(ft.EdgeIDs); got != wantEdge {
			t.Errorf("K=%d: edge = %d, want %d", k, got, wantEdge)
		}
		if got := ft.NumSwitches(); got != wantCore+wantAgg+wantEdge {
			t.Errorf("K=%d: switches = %d, want %d", k, got, wantCore+wantAgg+wantEdge)
		}
		if got := ft.NumHosts(); got != wantHosts {
			t.Errorf("K=%d: hosts = %d, want %d", k, got, wantHosts)
		}
		_ = wantSwitches
		if err := ft.Validate(); err != nil {
			t.Errorf("K=%d: Validate: %v", k, err)
		}
	}
}

func TestFatTreeRejectsOddK(t *testing.T) {
	for _, k := range []int{0, 1, 3, 5, -2} {
		if _, err := NewFatTree(k); err == nil {
			t.Errorf("K=%d: expected error", k)
		}
	}
}

func TestFatTreePortCounts(t *testing.T) {
	ft, err := NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	// In a K-ary fat-tree every switch has exactly K ports.
	for _, id := range ft.Switches() {
		if d := ft.Node(id).Degree(); d != 4 {
			t.Errorf("switch %d degree = %d, want 4", id, d)
		}
	}
	for _, id := range ft.Hosts() {
		if d := ft.Node(id).Degree(); d != 1 {
			t.Errorf("host %d degree = %d, want 1", id, d)
		}
	}
}

func TestAllShortestPathsK4(t *testing.T) {
	ft, err := NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	// Same-pod edge switches: 2 two-hop... path through each pod agg: 2 paths
	// of 3 switches (edge-agg-edge).
	e0, e1 := ft.EdgeIDs[0], ft.EdgeIDs[1]
	paths := ft.AllShortestPaths(e0, e1)
	if len(paths) != 2 {
		t.Fatalf("same-pod paths = %d, want 2", len(paths))
	}
	for _, p := range paths {
		if len(p) != 3 {
			t.Errorf("same-pod path len = %d, want 3", len(p))
		}
		if p[0] != e0 || p[2] != e1 {
			t.Errorf("path endpoints wrong: %v", p)
		}
		if ft.Node(p[1]).Layer != LayerAggregation {
			t.Errorf("middle hop not aggregation: %v", p)
		}
	}
	// Cross-pod: 4 paths of 5 switches (edge-agg-core-agg-edge).
	e8 := ft.EdgeIDs[2] // pod 1
	cross := ft.AllShortestPaths(e0, e8)
	if len(cross) != 4 {
		t.Fatalf("cross-pod paths = %d, want 4", len(cross))
	}
	for _, p := range cross {
		if len(p) != 5 {
			t.Errorf("cross-pod path len = %d, want 5", len(p))
		}
		if ft.Node(p[2]).Layer != LayerCore {
			t.Errorf("middle hop not core: %v", p)
		}
	}
}

func TestAllShortestPathsTrivial(t *testing.T) {
	ft, err := NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	p := ft.AllShortestPaths(ft.EdgeIDs[0], ft.EdgeIDs[0])
	if len(p) != 1 || len(p[0]) != 1 {
		t.Fatalf("self path = %v", p)
	}
}

func TestAllEdgePairPathsK4Count(t *testing.T) {
	ft, err := NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	counts := ft.CountEdgePairPaths()
	// Ordered pairs: 8 edge switches. Same-pod ordered pairs: 8 (4 pods x 2
	// ordered pairs), each with 2 three-switch paths = 16. Cross-pod ordered
	// pairs: 8*7-8 = 48, each with 4 five-switch paths = 192.
	if counts[3] != 16 {
		t.Errorf("3-switch paths = %d, want 16", counts[3])
	}
	if counts[5] != 192 {
		t.Errorf("5-switch paths = %d, want 192", counts[5])
	}
	if total := counts[3] + counts[5]; total != 208 {
		t.Errorf("total ordered paths = %d, want 208", total)
	}
}

func TestPathContains(t *testing.T) {
	p := Path{3, 2, 4}
	cases := []struct {
		sub  []NodeID
		want bool
	}{
		{[]NodeID{}, true},
		{[]NodeID{3}, true},
		{[]NodeID{2}, true},
		{[]NodeID{4}, true},
		{[]NodeID{3, 2}, true},
		{[]NodeID{2, 4}, true},
		{[]NodeID{3, 4}, false},
		{[]NodeID{4, 2}, false},
		{[]NodeID{3, 2, 4}, true},
		{[]NodeID{3, 2, 4, 5}, false},
	}
	for _, c := range cases {
		if got := p.Contains(c.sub); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.sub, got, c.want)
		}
	}
}

func TestPathEqualClone(t *testing.T) {
	p := Path{1, 2, 3}
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone not equal")
	}
	q[0] = 9
	if p.Equal(q) {
		t.Fatal("clone aliases original")
	}
	if p.Equal(Path{1, 2}) {
		t.Fatal("different lengths compared equal")
	}
}

func TestPathString(t *testing.T) {
	if s := (Path{1, 2}).String(); s != "<s1,s2>" {
		t.Errorf("String = %q", s)
	}
}

// Property: every enumerated shortest path is simple (no repeated switch)
// and starts/ends at the query endpoints.
func TestShortestPathsPropertySimple(t *testing.T) {
	ft, err := NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		src := ft.EdgeIDs[int(a)%len(ft.EdgeIDs)]
		dst := ft.EdgeIDs[int(b)%len(ft.EdgeIDs)]
		for _, p := range ft.AllShortestPaths(src, dst) {
			if p[0] != src || p[len(p)-1] != dst {
				return false
			}
			seen := make(map[NodeID]bool)
			for _, n := range p {
				if seen[n] {
					return false
				}
				seen[n] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: all shortest paths between the same pair have the same length.
func TestShortestPathsPropertyEqualLength(t *testing.T) {
	ft, err := NewFatTree(6)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		src := ft.EdgeIDs[int(a)%len(ft.EdgeIDs)]
		dst := ft.EdgeIDs[int(b)%len(ft.EdgeIDs)]
		ps := ft.AllShortestPaths(src, dst)
		if len(ps) == 0 {
			return src == dst // only unreachable case would be a bug
		}
		want := len(ps[0])
		for _, p := range ps {
			if len(p) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPodOf(t *testing.T) {
	ft, err := NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	if got := ft.PodOf(ft.EdgeIDs[0]); got != 0 {
		t.Errorf("PodOf(edge0) = %d", got)
	}
	if got := ft.PodOf(ft.EdgeIDs[3]); got != 1 {
		t.Errorf("PodOf(edge3) = %d", got)
	}
	if got := ft.PodOf(ft.AggIDs[5]); got != 2 {
		t.Errorf("PodOf(agg5) = %d", got)
	}
	if got := ft.PodOf(ft.CoreIDs[0]); got != -1 {
		t.Errorf("PodOf(core0) = %d", got)
	}
}
