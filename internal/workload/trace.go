package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"mars/internal/netsim"
	"mars/internal/topology"
)

// Trace support: the paper drives its testbed with the UW data-center
// trace; this repository substitutes synthetic generators (DESIGN.md §2).
// To let users bring their own captures — or to freeze a synthetic
// workload for exact cross-run comparison — traces can be captured from a
// simulation, exported to CSV, and replayed.

// TraceRecord is one packet emission.
type TraceRecord struct {
	// At is the send time.
	At netsim.Time
	// Src and Dst are host node IDs.
	Src, Dst topology.NodeID
	// Flow is the ECMP identity.
	Flow netsim.FlowKey
	// Size is the packet size in bytes.
	Size int32
}

// Trace is an ordered packet trace.
type Trace []TraceRecord

// Sort orders records by send time (stable on equal times).
func (tr Trace) Sort() {
	sort.SliceStable(tr, func(i, j int) bool { return tr[i].At < tr[j].At })
}

// Duration returns the time span covered by the trace.
func (tr Trace) Duration() netsim.Time {
	if len(tr) == 0 {
		return 0
	}
	return tr[len(tr)-1].At - tr[0].At
}

// WriteCSV exports the trace with the header
// `time_ns,src,dst,flow,size`.
func (tr Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_ns", "src", "dst", "flow", "size"}); err != nil {
		return err
	}
	for _, r := range tr {
		rec := []string{
			strconv.FormatInt(int64(r.At), 10),
			strconv.FormatInt(int64(r.Src), 10),
			strconv.FormatInt(int64(r.Dst), 10),
			strconv.FormatUint(uint64(r.Flow), 10),
			strconv.FormatInt(int64(r.Size), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV imports a trace written by WriteCSV (or any CSV with the same
// five columns).
func ReadCSV(r io.Reader) (Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("workload: empty trace file")
	}
	start := 0
	if rows[0][0] == "time_ns" {
		start = 1
	}
	out := make(Trace, 0, len(rows)-start)
	for i, row := range rows[start:] {
		if len(row) != 5 {
			return nil, fmt.Errorf("workload: trace row %d has %d fields, want 5", i+start+1, len(row))
		}
		at, err1 := strconv.ParseInt(row[0], 10, 64)
		src, err2 := strconv.ParseInt(row[1], 10, 32)
		dst, err3 := strconv.ParseInt(row[2], 10, 32)
		flow, err4 := strconv.ParseUint(row[3], 10, 64)
		size, err5 := strconv.ParseInt(row[4], 10, 32)
		for _, e := range []error{err1, err2, err3, err4, err5} {
			if e != nil {
				return nil, fmt.Errorf("workload: trace row %d: %w", i+start+1, e)
			}
		}
		if size <= 0 {
			return nil, fmt.Errorf("workload: trace row %d: non-positive size", i+start+1)
		}
		out = append(out, TraceRecord{
			At:   netsim.Time(at),
			Src:  topology.NodeID(src),
			Dst:  topology.NodeID(dst),
			Flow: netsim.FlowKey(flow),
			Size: int32(size),
		})
	}
	return out, nil
}

// Replay schedules every trace record on the simulator, offset so the
// first packet fires at start. Records whose endpoints are not hosts of
// the simulator's topology are skipped and counted.
func (tr Trace) Replay(s *netsim.Simulator, start netsim.Time) (sent, skipped int) {
	if len(tr) == 0 {
		return 0, 0
	}
	sorted := make(Trace, len(tr))
	copy(sorted, tr)
	sorted.Sort()
	base := sorted[0].At
	for _, r := range sorted {
		if !s.Topo.IsHost(r.Src) || !s.Topo.IsHost(r.Dst) || r.Src == r.Dst {
			skipped++
			continue
		}
		rec := r
		s.At(start+rec.At-base, func() {
			s.Send(s.Now(), rec.Src, rec.Dst, rec.Flow, rec.Size)
		})
		sent++
	}
	return sent, skipped
}

// Recorder captures every host emission from a simulation into a Trace.
// Attach it as the simulator's Hooks, or chain it in front of another
// pipeline with Inner.
type Recorder struct {
	netsim.NopHooks
	// Inner, if set, receives all hook callbacks after recording.
	Inner netsim.Hooks
	// Out accumulates one record per packet at its first switch arrival.
	Out Trace

	seen map[uint64]bool
}

// NewRecorder wraps an optional inner pipeline.
func NewRecorder(inner netsim.Hooks) *Recorder {
	return &Recorder{Inner: inner, seen: make(map[uint64]bool)}
}

// OnSwitchArrival implements netsim.Hooks: the first arrival of a packet
// (its source edge switch) defines its trace record.
func (rec *Recorder) OnSwitchArrival(s *netsim.Simulator, sw topology.NodeID, in topology.PortID, pkt *netsim.Packet) {
	if !rec.seen[pkt.ID] {
		rec.seen[pkt.ID] = true
		rec.Out = append(rec.Out, TraceRecord{
			At: pkt.SendTime, Src: pkt.Src, Dst: pkt.Dst, Flow: pkt.Flow, Size: pkt.Size,
		})
	}
	if rec.Inner != nil {
		rec.Inner.OnSwitchArrival(s, sw, in, pkt)
	}
}

// OnForward implements netsim.Hooks.
func (rec *Recorder) OnForward(s *netsim.Simulator, sw topology.NodeID, in, out topology.PortID, pkt *netsim.Packet, qlen int) netsim.Action {
	if rec.Inner != nil {
		return rec.Inner.OnForward(s, sw, in, out, pkt, qlen)
	}
	return netsim.ActionForward
}

// OnDeliver implements netsim.Hooks.
func (rec *Recorder) OnDeliver(s *netsim.Simulator, host topology.NodeID, pkt *netsim.Packet) {
	if rec.Inner != nil {
		rec.Inner.OnDeliver(s, host, pkt)
	}
}

// OnDrop implements netsim.Hooks.
func (rec *Recorder) OnDrop(s *netsim.Simulator, sw topology.NodeID, port topology.PortID, pkt *netsim.Packet, reason netsim.DropReason) {
	if rec.Inner != nil {
		rec.Inner.OnDrop(s, sw, port, pkt, reason)
	}
}

var _ netsim.Hooks = (*Recorder)(nil)
