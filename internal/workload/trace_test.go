package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"mars/internal/netsim"
	"mars/internal/topology"
)

func TestTraceCSVRoundTrip(t *testing.T) {
	tr := Trace{
		{At: 100, Src: 7, Dst: 10, Flow: 3, Size: 700},
		{At: 250, Src: 10, Dst: 7, Flow: 4, Size: 64},
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("roundtrip = %v, want %v", got, tr)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"time_ns,src,dst,flow,size\nx,1,2,3,4\n",
		"time_ns,src,dst,flow,size\n1,2,3,4,0\n",
		"time_ns,src,dst\n1,2,3\n",
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestTraceSortAndDuration(t *testing.T) {
	tr := Trace{{At: 300}, {At: 100}, {At: 200}}
	tr.Sort()
	if tr[0].At != 100 || tr[2].At != 300 {
		t.Errorf("sort: %v", tr)
	}
	if tr.Duration() != 200 {
		t.Errorf("duration = %v", tr.Duration())
	}
	if (Trace{}).Duration() != 0 {
		t.Error("empty duration")
	}
}

func TestCaptureAndReplayDeterministic(t *testing.T) {
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	// Capture a synthetic run.
	rec := NewRecorder(nil)
	r1 := netsim.NewECMPRouter(ft.Topology, 9)
	s1 := netsim.New(ft.Topology, r1, rec, netsim.DefaultConfig(), 9)
	RandomBackground(s1, ft, BackgroundConfig{
		NumFlows: 12, RatePPS: 150, Gaps: GapExponential,
		Start: 0, Stop: 500 * netsim.Millisecond, CrossPodBias: 1.0,
		RoundRobinSrc: true, RoundRobinDst: true,
	}, 1)
	s1.Run(netsim.Second)
	if len(rec.Out) == 0 {
		t.Fatal("nothing captured")
	}
	if int64(len(rec.Out)) != s1.Stats.Sent {
		t.Errorf("captured %d, sent %d", len(rec.Out), s1.Stats.Sent)
	}

	// Replay twice; the runs must be identical packet-for-packet.
	replay := func() (int64, netsim.Time) {
		r := netsim.NewECMPRouter(ft.Topology, 9)
		s := netsim.New(ft.Topology, r, nil, netsim.DefaultConfig(), 9)
		sent, skipped := rec.Out.Replay(s, 0)
		if skipped != 0 {
			t.Fatalf("skipped %d records", skipped)
		}
		if sent != len(rec.Out) {
			t.Fatalf("replayed %d of %d", sent, len(rec.Out))
		}
		s.RunAll()
		return s.Stats.Delivered, s.Stats.TotalLatency
	}
	d1, l1 := replay()
	d2, l2 := replay()
	if d1 != d2 || l1 != l2 {
		t.Errorf("replays diverged: (%d,%v) vs (%d,%v)", d1, l1, d2, l2)
	}
	if d1 != int64(len(rec.Out)) {
		t.Errorf("replay delivered %d of %d", d1, len(rec.Out))
	}
}

func TestReplaySkipsForeignEndpoints(t *testing.T) {
	ft, _ := topology.NewFatTree(4)
	r := netsim.NewECMPRouter(ft.Topology, 1)
	s := netsim.New(ft.Topology, r, nil, netsim.DefaultConfig(), 1)
	tr := Trace{
		{At: 0, Src: ft.HostIDs[0], Dst: ft.HostIDs[1], Flow: 1, Size: 100},
		{At: 10, Src: 0, Dst: ft.HostIDs[1], Flow: 2, Size: 100},             // src is a switch
		{At: 20, Src: ft.HostIDs[2], Dst: ft.HostIDs[2], Flow: 3, Size: 100}, // self flow
		{At: 30, Src: 9999, Dst: ft.HostIDs[1], Flow: 4, Size: 100},          // out of range
	}
	sent, skipped := tr.Replay(s, 0)
	if sent != 1 || skipped != 3 {
		t.Errorf("sent=%d skipped=%d, want 1/3", sent, skipped)
	}
	s.RunAll()
}
