// Package workload generates synthetic traffic shaped like the paper's
// evaluation environment: background flows of roughly 200 packets per
// second between host pairs with packet sizes and inter-packet gaps
// following the heavy-tailed mix reported for the UW data-center trace
// (Benson et al., IMC'10), plus diurnal load modulation for the Fig. 5
// threshold study and transient burst flows for micro-burst injection.
//
// The paper uses the proprietary trace itself; this generator substitutes
// a seeded synthetic equivalent (see DESIGN.md §2) — the detectors only
// see rates, sizes, and gaps, all of which the generator reproduces in
// distributional shape.
package workload

import (
	"math"
	"math/rand"

	"mars/internal/netsim"
	"mars/internal/topology"
)

// SizeDist samples packet sizes in bytes.
type SizeDist interface {
	Sample(r *rand.Rand) int32
}

// FixedSize always returns the same packet size.
type FixedSize int32

// Sample implements SizeDist.
func (f FixedSize) Sample(*rand.Rand) int32 { return int32(f) }

// UWLikeSizes is a bimodal mix approximating data-center traffic: ~55%
// small control/ACK packets (40-200 B), ~40% MTU-sized data (1400-1500 B),
// and a 5% mid-range remainder.
type UWLikeSizes struct{}

// Sample implements SizeDist.
func (UWLikeSizes) Sample(r *rand.Rand) int32 {
	x := r.Float64()
	switch {
	case x < 0.55:
		return int32(40 + r.Intn(161))
	case x < 0.95:
		return int32(1400 + r.Intn(101))
	default:
		return int32(201 + r.Intn(1199))
	}
}

// GapDist samples inter-packet gaps given a target mean gap.
type GapDist uint8

const (
	// GapExponential gives Poisson arrivals.
	GapExponential GapDist = iota
	// GapLognormal gives burstier, heavy-tailed gaps (σ=1), closer to the
	// ON/OFF behaviour observed in data-center traces.
	GapLognormal
	// GapConstant gives a CBR flow.
	GapConstant
)

func (g GapDist) sample(r *rand.Rand, mean float64) float64 {
	switch g {
	case GapExponential:
		return r.ExpFloat64() * mean
	case GapLognormal:
		// lognormal with median chosen so the mean matches: mean of
		// lognormal(mu, sigma) = exp(mu + sigma^2/2).
		const sigma = 1.0
		mu := math.Log(mean) - sigma*sigma/2
		return math.Exp(mu + sigma*r.NormFloat64())
	case GapConstant:
		return mean
	default:
		return mean
	}
}

// RateFn modulates a flow's packet rate over time; it returns a multiplier
// applied to the base rate (0 pauses the flow for that gap).
type RateFn func(t netsim.Time) float64

// Diurnal returns a day-long sinusoidal load curve scaled to [low, high]
// multipliers with the given period, peaking mid-period. This reproduces
// the "traffic volume varies throughout the day" setting of Fig. 5.
func Diurnal(low, high float64, period netsim.Time) RateFn {
	return func(t netsim.Time) float64 {
		phase := 2 * math.Pi * float64(t%period) / float64(period)
		// Minimum at phase 0, maximum at pi.
		return low + (high-low)*(1-math.Cos(phase))/2
	}
}

// Flow is a unidirectional packet stream between two hosts.
type Flow struct {
	// Src and Dst are host node IDs.
	Src, Dst topology.NodeID
	// Key is the flow's ECMP identity.
	Key netsim.FlowKey
	// RatePPS is the base packet rate.
	RatePPS float64
	// Sizes samples per-packet sizes; nil means UWLikeSizes.
	Sizes SizeDist
	// Gaps selects the inter-packet gap distribution.
	Gaps GapDist
	// Start and Stop bound the flow's lifetime; Stop <= Start means
	// "runs until the simulation ends".
	Start, Stop netsim.Time
	// Rate optionally modulates RatePPS over time.
	Rate RateFn

	// SentCount is incremented for every packet emitted.
	SentCount int64
}

// Install schedules the flow's packets on the simulator. It must be called
// before the simulator runs past Start.
func (f *Flow) Install(s *netsim.Simulator) {
	if f.RatePPS <= 0 {
		panic("workload: flow rate must be positive")
	}
	sizes := f.Sizes
	if sizes == nil {
		sizes = UWLikeSizes{}
	}
	var emit func()
	emit = func() {
		now := s.Now()
		if f.Stop > f.Start && now >= f.Stop {
			return
		}
		rate := f.RatePPS
		if f.Rate != nil {
			rate *= f.Rate(now)
		}
		if rate > 0 {
			s.Send(now, f.Src, f.Dst, f.Key, sizes.Sample(s.RNG()))
			f.SentCount++
			meanGap := float64(netsim.Second) / rate
			gap := f.Gaps.sample(s.RNG(), meanGap)
			s.After(netsim.Time(gap)+1, emit)
		} else {
			// Paused by the rate function; poll again shortly.
			s.After(10*netsim.Millisecond, emit)
		}
	}
	s.At(f.Start, emit)
}

// Burst schedules a transient high-rate flow: the paper's micro-burst
// injection sends "one transient flow in a great amount, over 1000 pps
// within a second".
func Burst(s *netsim.Simulator, src, dst topology.NodeID, key netsim.FlowKey, pps float64, start, dur netsim.Time, size int32) *Flow {
	f := &Flow{
		Src: src, Dst: dst, Key: key,
		RatePPS: pps,
		Sizes:   FixedSize(size),
		Gaps:    GapConstant,
		Start:   start,
		Stop:    start + dur,
	}
	f.Install(s)
	return f
}

// BackgroundConfig parameterizes a random mesh of background flows.
type BackgroundConfig struct {
	// NumFlows is the number of host pairs to connect.
	NumFlows int
	// RatePPS is the base per-flow rate (the paper uses ~200 pps).
	RatePPS float64
	// RateJitter randomizes each flow's rate within ±RateJitter fraction.
	RateJitter float64
	// Gaps selects the gap distribution for all flows.
	Gaps GapDist
	// Start and Stop bound all flows.
	Start, Stop netsim.Time
	// Rate optionally modulates every flow (e.g. Diurnal).
	Rate RateFn
	// CrossPodBias in [0,1] is the probability a flow's endpoints are
	// forced into different pods (longer paths exercise more switches).
	CrossPodBias float64
	// RoundRobinSrc assigns flow sources round-robin over hosts instead of
	// uniformly at random, evening out per-edge load.
	RoundRobinSrc bool
	// RoundRobinDst rotates destinations deterministically as well,
	// evening out per-host fan-in (random destinations create genuine
	// congestion hotspots that confound fault-injection studies).
	RoundRobinDst bool
}

// RandomBackground installs cfg.NumFlows flows between distinct random
// hosts of a fat-tree and returns them. Flow keys are 1..NumFlows offset
// by keyBase so callers can keep key ranges disjoint.
func RandomBackground(s *netsim.Simulator, ft *topology.FatTree, cfg BackgroundConfig, keyBase uint64) []*Flow {
	rng := s.RNG()
	hosts := ft.HostIDs
	hostsPerPod := len(hosts) / ft.K
	flows := make([]*Flow, 0, cfg.NumFlows)
	for i := 0; i < cfg.NumFlows; i++ {
		var src topology.NodeID
		if cfg.RoundRobinSrc {
			src = hosts[i%len(hosts)]
		} else {
			src = hosts[rng.Intn(len(hosts))]
		}
		var dst topology.NodeID
		if cfg.RoundRobinDst {
			// Deterministic rotation with a co-prime stride: every host
			// receives the same number of flows. Cross-pod preference is
			// honored by probing to the next slot outside the source pod.
			srcIdx := srcIndex(hosts, src)
			idx := (srcIdx + 1 + (i*5)%(len(hosts)-1)) % len(hosts)
			for probe := 0; probe < len(hosts); probe++ {
				dst = hosts[idx]
				samePod := idx/hostsPerPod == srcIdx/hostsPerPod
				crossWanted := cfg.CrossPodBias > 0 && rng.Float64() < cfg.CrossPodBias
				if dst != src && (!crossWanted || !samePod) {
					break
				}
				idx = (idx + 1) % len(hosts)
			}
		} else {
			for {
				if cfg.CrossPodBias > 0 && rng.Float64() < cfg.CrossPodBias {
					srcPod := srcIndex(hosts, src) / hostsPerPod
					dstPod := rng.Intn(ft.K - 1)
					if dstPod >= srcPod {
						dstPod++
					}
					dst = hosts[dstPod*hostsPerPod+rng.Intn(hostsPerPod)]
				} else {
					dst = hosts[rng.Intn(len(hosts))]
				}
				if dst != src {
					break
				}
			}
		}
		rate := cfg.RatePPS
		if cfg.RateJitter > 0 {
			rate *= 1 + cfg.RateJitter*(2*rng.Float64()-1)
		}
		f := &Flow{
			Src: src, Dst: dst,
			Key:     netsim.FlowKey(keyBase + uint64(i) + 1),
			RatePPS: rate,
			Gaps:    cfg.Gaps,
			Start:   cfg.Start,
			Stop:    cfg.Stop,
			Rate:    cfg.Rate,
		}
		f.Install(s)
		flows = append(flows, f)
	}
	return flows
}

func srcIndex(hosts []topology.NodeID, h topology.NodeID) int {
	for i, x := range hosts {
		if x == h {
			return i
		}
	}
	return 0
}
