package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mars/internal/netsim"
	"mars/internal/topology"
)

func testTopo(t *testing.T) (*topology.FatTree, *netsim.Simulator) {
	t.Helper()
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	r := netsim.NewECMPRouter(ft.Topology, 1)
	s := netsim.New(ft.Topology, r, nil, netsim.DefaultConfig(), 42)
	return ft, s
}

func TestFlowRateApproximation(t *testing.T) {
	ft, s := testTopo(t)
	f := &Flow{
		Src: ft.HostIDs[0], Dst: ft.HostIDs[5], Key: 1,
		RatePPS: 200, Gaps: GapExponential,
		Start: 0, Stop: 2 * netsim.Second,
	}
	f.Install(s)
	s.Run(3 * netsim.Second)
	// 200 pps for 2 s => ~400 packets; Poisson, so allow 3 sigma (~±60).
	if f.SentCount < 330 || f.SentCount > 470 {
		t.Errorf("sent = %d, want ~400", f.SentCount)
	}
	if s.Stats.Delivered != f.SentCount {
		t.Errorf("delivered %d != sent %d", s.Stats.Delivered, f.SentCount)
	}
}

func TestConstantGapFlowExactCount(t *testing.T) {
	ft, s := testTopo(t)
	f := &Flow{
		Src: ft.HostIDs[0], Dst: ft.HostIDs[1], Key: 1,
		RatePPS: 100, Gaps: GapConstant, Sizes: FixedSize(500),
		Start: 0, Stop: 1 * netsim.Second,
	}
	f.Install(s)
	s.Run(2 * netsim.Second)
	// 100 pps CBR for 1 s: exactly 100 packets (gap of 10 ms + 1 ns).
	if f.SentCount != 100 {
		t.Errorf("sent = %d, want 100", f.SentCount)
	}
}

func TestBurstFlow(t *testing.T) {
	ft, s := testTopo(t)
	f := Burst(s, ft.HostIDs[0], ft.HostIDs[9], 999, 1500, 500*netsim.Millisecond, netsim.Second, 900)
	s.Run(3 * netsim.Second)
	if f.SentCount < 1400 || f.SentCount > 1600 {
		t.Errorf("burst sent = %d, want ~1500", f.SentCount)
	}
}

func TestFlowRespectsStartStop(t *testing.T) {
	ft, s := testTopo(t)
	first := netsim.Time(math.MaxInt64)
	var last netsim.Time
	hook := &timeCapture{first: &first, last: &last}
	s2 := netsim.New(ft.Topology, netsim.NewECMPRouter(ft.Topology, 1), hook, netsim.DefaultConfig(), 9)
	f := &Flow{
		Src: ft.HostIDs[0], Dst: ft.HostIDs[3], Key: 4,
		RatePPS: 500, Gaps: GapExponential,
		Start: netsim.Second, Stop: 2 * netsim.Second,
	}
	f.Install(s2)
	s2.Run(5 * netsim.Second)
	if first < netsim.Second {
		t.Errorf("first send at %v, before start", first)
	}
	if last >= 2*netsim.Second+50*netsim.Millisecond {
		t.Errorf("last send at %v, after stop", last)
	}
	_ = s
}

type timeCapture struct {
	netsim.NopHooks
	first, last *netsim.Time
}

func (tc *timeCapture) OnDeliver(s *netsim.Simulator, _ topology.NodeID, pkt *netsim.Packet) {
	if pkt.SendTime < *tc.first {
		*tc.first = pkt.SendTime
	}
	if pkt.SendTime > *tc.last {
		*tc.last = pkt.SendTime
	}
}

func TestUWLikeSizesBimodal(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var small, large, mid int
	n := 10000
	for i := 0; i < n; i++ {
		sz := (UWLikeSizes{}).Sample(r)
		switch {
		case sz <= 200:
			small++
		case sz >= 1400:
			large++
		default:
			mid++
		}
	}
	if f := float64(small) / float64(n); f < 0.5 || f > 0.6 {
		t.Errorf("small fraction = %.3f", f)
	}
	if f := float64(large) / float64(n); f < 0.35 || f > 0.45 {
		t.Errorf("large fraction = %.3f", f)
	}
}

func TestUWLikeSizesBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			sz := (UWLikeSizes{}).Sample(r)
			if sz < 40 || sz > 1500 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiurnalRange(t *testing.T) {
	fn := Diurnal(0.2, 1.0, 24*netsim.Second)
	lo, hi := math.Inf(1), math.Inf(-1)
	for ts := netsim.Time(0); ts < 24*netsim.Second; ts += 100 * netsim.Millisecond {
		v := fn(ts)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo < 0.19 || lo > 0.25 {
		t.Errorf("min = %.3f, want ~0.2", lo)
	}
	if hi < 0.95 || hi > 1.01 {
		t.Errorf("max = %.3f, want ~1.0", hi)
	}
	// Peak mid-period.
	if fn(12*netsim.Second) < fn(1*netsim.Second) {
		t.Error("diurnal should peak mid-period")
	}
}

func TestLognormalGapMean(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	mean := 1e6 // 1 ms in ns
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += GapLognormal.sample(r, mean)
	}
	got := sum / float64(n)
	if got < 0.85*mean || got > 1.15*mean {
		t.Errorf("lognormal mean gap = %.0f, want ~%.0f", got, mean)
	}
}

func TestRandomBackgroundEndpoints(t *testing.T) {
	ft, s := testTopo(t)
	flows := RandomBackground(s, ft, BackgroundConfig{
		NumFlows: 30, RatePPS: 100, Gaps: GapExponential,
		Start: 0, Stop: 100 * netsim.Millisecond,
		CrossPodBias: 1.0,
	}, 1000)
	if len(flows) != 30 {
		t.Fatalf("flows = %d", len(flows))
	}
	hostsPerPod := len(ft.HostIDs) / ft.K
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Error("self flow generated")
		}
		sp := srcIndex(ft.HostIDs, f.Src) / hostsPerPod
		dp := srcIndex(ft.HostIDs, f.Dst) / hostsPerPod
		if sp == dp {
			t.Errorf("CrossPodBias=1 produced same-pod flow %d->%d", f.Src, f.Dst)
		}
	}
	s.Run(200 * netsim.Millisecond)
	if s.Stats.Sent == 0 {
		t.Error("background generated no traffic")
	}
}

func TestFlowKeyDisjointRanges(t *testing.T) {
	ft, s := testTopo(t)
	a := RandomBackground(s, ft, BackgroundConfig{NumFlows: 5, RatePPS: 10, Start: 0, Stop: netsim.Millisecond}, 0)
	b := RandomBackground(s, ft, BackgroundConfig{NumFlows: 5, RatePPS: 10, Start: 0, Stop: netsim.Millisecond}, 100)
	seen := map[netsim.FlowKey]bool{}
	for _, f := range append(a, b...) {
		if seen[f.Key] {
			t.Errorf("duplicate flow key %d", f.Key)
		}
		seen[f.Key] = true
	}
}
