// Package mars is a Go reproduction of "MARS: Fault Localization in
// Programmable Networking Systems with Low-cost In-Band Network Telemetry"
// (ICPP 2023): path-aware on-demand telemetry, self-adaptive in-network
// anomaly detection, and automatic multi-level root cause analysis, built
// on a deterministic discrete-event network simulator.
//
// The package wires the full stack — fat-tree topology, ECMP forwarding,
// the MARS P4-equivalent switch program, the controller with per-flow
// reservoirs, and the FSM+SBFL analyzer — behind one System type:
//
//	sys, _ := mars.NewSystem(mars.DefaultConfig())
//	sys.StartBackground(96, 220)
//	gt := sys.InjectFault(mars.FaultDelay, 2*mars.Second, 1500*mars.Millisecond)
//	sys.Run(4 * mars.Second)
//	for i, c := range sys.Culprits() {
//		fmt.Printf("#%d %v\n", i+1, c)
//	}
//	_ = gt
//
// The subsystems live in internal/ packages; this package re-exports the
// identifiers a caller needs.
package mars

import (
	"fmt"

	"mars/internal/controlplane"
	"mars/internal/ctrlchan"
	"mars/internal/dataplane"
	"mars/internal/faults"
	"mars/internal/netsim"
	"mars/internal/pathid"
	"mars/internal/rca"
	"mars/internal/telemetry"
	"mars/internal/topology"
	"mars/internal/workload"
)

// Time re-exports the simulator's nanosecond clock.
type Time = netsim.Time

// Time unit constants.
const (
	Nanosecond  = netsim.Nanosecond
	Microsecond = netsim.Microsecond
	Millisecond = netsim.Millisecond
	Second      = netsim.Second
)

// FaultKind selects one of the paper's five fault scenarios.
type FaultKind = faults.Kind

// The five fault scenarios of §5.2, plus the control-channel degradation
// scenario this repository adds.
const (
	FaultMicroBurst  = faults.MicroBurst
	FaultECMP        = faults.ECMPImbalance
	FaultProcessRate = faults.ProcessRateDecrease
	FaultDelay       = faults.Delay
	FaultDrop        = faults.Drop
	FaultCtrlChan    = faults.CtrlChanDegrade
)

// The gray-failure scenario family: partial, intermittent, and correlated
// faults outside the paper's Table 1 (see `mars-bench -exp gray`).
const (
	FaultSilentDrop    = faults.SilentDrop
	FaultLinkFlap      = faults.LinkFlap
	FaultLinkDown      = faults.LinkDown
	FaultSwitchReboot  = faults.SwitchReboot
	FaultUplinkDegrade = faults.UplinkDegrade
)

// Injection is one timed fault inside a Schedule.
type Injection = faults.Injection

// Schedule is a declarative list of timed, possibly overlapping fault
// injections applied as one episode.
type Schedule = faults.Schedule

// Episode is the ground truth of an applied Schedule: every injected
// fault with its causal links and lifecycle handles.
type Episode = faults.Episode

// Fault is one episode entry: a ground truth plus its causal parent.
type Fault = faults.Fault

// Culprit is one entry of the ranked diagnosis output.
type Culprit = rca.Culprit

// FlowID is MARS's ⟨source switch, sink switch⟩ flow identity.
type FlowID = dataplane.FlowID

// GroundTruth describes an injected fault.
type GroundTruth = faults.GroundTruth

// Diagnosis is one on-demand telemetry collection.
type Diagnosis = controlplane.Diagnosis

// Config assembles a complete MARS deployment on a simulated fat-tree.
type Config struct {
	// FatTreeK is the fat-tree arity (even, >= 2). Default 4, the paper's
	// Mininet topology.
	FatTreeK int
	// Seed drives all randomness (workload, faults, reservoirs).
	Seed int64
	// Sim sets the physical network parameters.
	Sim netsim.Config
	// Program configures the switch pipeline (epoch, PathID hash, ring).
	Program dataplane.Config
	// Controller configures threshold refresh and diagnosis windows.
	Controller controlplane.Config
	// CtrlChan configures the controller↔switch control channel. The
	// zero value is a perfect channel (synchronous, lossless), matching
	// the paper's idealized evaluation setup.
	CtrlChan ctrlchan.Config
	// RCA configures the analyzer.
	RCA rca.Config
	// Codec selects the telemetry encoding by registered name
	// (internal/telemetry). "" or "mars11" is the paper's fixed 11-byte
	// header; "perhop", "pintlike", and "sampled" trade bytes/packet
	// against reconstruction fidelity (see `mars-bench -exp overhead`).
	Codec string
}

// DefaultConfig mirrors the evaluation setup: K=4 fat-tree at
// software-switch scale, 100 ms telemetry epochs, 8-bit CRC16 PathIDs.
func DefaultConfig() Config {
	return Config{
		FatTreeK: 4,
		Seed:     1,
		Sim: netsim.Config{
			LinkBandwidthBps:     14_000_000,
			HostLinkBandwidthBps: 100_000_000,
			PropDelay:            10 * netsim.Microsecond,
			SwitchProcDelay:      5 * netsim.Microsecond,
			QueueCapacity:        128,
		},
		Program:    dataplane.DefaultProgramConfig(),
		Controller: controlplane.DefaultConfig(),
		RCA:        rca.DefaultConfig(),
	}
}

// System is a running MARS deployment: simulator, data plane, controller,
// and analyzer, plus accumulated diagnosis results.
type System struct {
	cfg Config

	FT         *topology.FatTree
	Sim        *netsim.Simulator
	Router     *netsim.ECMPRouter
	Program    *dataplane.Program
	Controller *controlplane.Controller
	CtrlChan   *ctrlchan.Channel
	Analyzer   *rca.Analyzer
	Paths      *pathid.Table

	injector *faults.Injector
	lists    [][]rca.Culprit
	// Diagnoses collects every on-demand collection for inspection.
	Diagnoses []Diagnosis
	// OnDiagnosis, if set, observes each diagnosis as it happens.
	OnDiagnosis func(Diagnosis, []Culprit)
}

// NewSystem builds and wires a full deployment.
func NewSystem(cfg Config) (*System, error) {
	ft, err := topology.NewFatTree(cfg.FatTreeK)
	if err != nil {
		return nil, fmt.Errorf("mars: %w", err)
	}
	table, err := pathid.BuildTable(cfg.Program.PathCfg, ft.Topology, ft.AllEdgePairPaths())
	if err != nil {
		return nil, fmt.Errorf("mars: building PathID table: %w", err)
	}
	ccfg := cfg.Controller
	ccfg.Seed = cfg.Seed
	if cfg.Codec != "" {
		cdc, err := telemetry.New(cfg.Codec, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("mars: %w", err)
		}
		cfg.Program.Codec = cdc
		ccfg.Decoder = cdc
	}
	prog := dataplane.New(cfg.Program, ft.Topology, table, nil)
	router := netsim.NewECMPRouter(ft.Topology, uint64(cfg.Seed))
	sim := netsim.New(ft.Topology, router, prog, cfg.Sim, cfg.Seed)
	chcfg := cfg.CtrlChan
	if chcfg.Seed == 0 {
		chcfg.Seed = cfg.Seed
	}
	ch := ctrlchan.New(sim, chcfg)
	ctrl := controlplane.NewWithChannel(ccfg, sim, prog, ch)
	prog.Notifier = ctrl
	ctrl.Start()

	s := &System{
		cfg: cfg, FT: ft, Sim: sim, Router: router,
		Program: prog, Controller: ctrl, CtrlChan: ch, Paths: table,
		injector: faults.NewInjector(sim, ft, router),
	}
	s.injector.Chan = ch
	s.injector.Registers = prog
	s.Analyzer = rca.New(cfg.RCA, table, ctrl)
	ctrl.OnDiagnosis = func(d controlplane.Diagnosis) {
		s.Diagnoses = append(s.Diagnoses, d)
		list := s.Analyzer.Analyze(d)
		if len(list) > 0 {
			s.lists = append(s.lists, list)
		}
		if s.OnDiagnosis != nil {
			s.OnDiagnosis(d, list)
		}
	}
	return s, nil
}

// StartBackground installs a balanced cross-pod background mesh of
// numFlows flows at ratePPS each, running for the whole simulation.
func (s *System) StartBackground(numFlows int, ratePPS float64) {
	workload.RandomBackground(s.Sim, s.FT, workload.BackgroundConfig{
		NumFlows:      numFlows,
		RatePPS:       ratePPS,
		RateJitter:    0.2,
		Gaps:          workload.GapExponential,
		Start:         0,
		Stop:          0, // run forever
		CrossPodBias:  1.0,
		RoundRobinSrc: true,
		RoundRobinDst: true,
	}, 1)
}

// InjectFault schedules one of the five fault scenarios and returns its
// ground truth (for validation and experiments).
func (s *System) InjectFault(kind FaultKind, start, dur Time) GroundTruth {
	return s.injector.Inject(kind, start, dur)
}

// InjectSchedule applies a declarative fault schedule — multiple timed,
// possibly overlapping injections — and returns the episode ground truth.
// Each injection draws from its own seeded RNG, so adding or removing
// entries never perturbs the targets of the others.
func (s *System) InjectSchedule(sched Schedule) *Episode {
	s.injector.ScheduleSeed = s.cfg.Seed
	return s.injector.Apply(sched)
}

// Run advances the simulation to the given time.
func (s *System) Run(until Time) { s.Sim.Run(until) }

// Culprits returns the merged, ranked culprit list accumulated across all
// diagnoses so far.
func (s *System) Culprits() []Culprit {
	return rca.MergeRanked(s.lists)
}

// ThresholdOf exposes the controller's current dynamic threshold for a
// flow (for inspection and examples).
func (s *System) ThresholdOf(flow FlowID) Time {
	return s.Controller.ThresholdOf(flow)
}

// TelemetryOverheadBytes returns the in-band header bytes added to links.
func (s *System) TelemetryOverheadBytes() int64 {
	return s.Program.Stats.TelemetryLinkBytes
}

// DiagnosisOverheadBytes returns control-channel bytes (notifications,
// collections, refreshes, threshold pushes).
func (s *System) DiagnosisOverheadBytes() int64 {
	b := s.Controller.Bytes
	return b.DiagnosisBytes() + b.RefreshBytes + b.ThresholdPushBytes
}
