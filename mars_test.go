package mars

import (
	"testing"
)

func TestSystemEndToEndDelayFault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.StartBackground(96, 220)
	gt := sys.InjectFault(FaultDelay, 2*Second, 1500*Millisecond)
	sys.Run(4 * Second)

	if len(sys.Diagnoses) == 0 {
		t.Fatal("no diagnoses collected")
	}
	culprits := sys.Culprits()
	if len(culprits) == 0 {
		t.Fatal("no culprits produced")
	}
	found := -1
	for i, c := range culprits {
		if c.ContainsSwitch(gt.Switch) {
			found = i + 1
			break
		}
	}
	if found < 1 || found > 5 {
		t.Errorf("true switch s%d ranked %d; list head: %v", gt.Switch, found, culprits[:min(3, len(culprits))])
	}
}

func TestSystemRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FatTreeK = 3
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("expected error for odd K")
	}
}

func TestSystemOverheadCountersMove(t *testing.T) {
	cfg := DefaultConfig()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.StartBackground(24, 100)
	sys.Run(1 * Second)
	if sys.TelemetryOverheadBytes() == 0 {
		t.Error("no telemetry overhead counted")
	}
	// Refresh bytes should accrue even without anomalies.
	if sys.DiagnosisOverheadBytes() == 0 {
		t.Error("no control-channel bytes counted")
	}
}

func TestSystemThresholdBecomesDynamic(t *testing.T) {
	cfg := DefaultConfig()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.StartBackground(96, 220)
	sys.Run(2 * Second)
	dynamic := 0
	for _, src := range sys.FT.EdgeIDs {
		for _, dst := range sys.FT.EdgeIDs {
			if src == dst {
				continue
			}
			if th := sys.ThresholdOf(FlowID{Src: src, Sink: dst}); th < cfg.Program.DefaultThreshold {
				dynamic++
			}
		}
	}
	if dynamic == 0 {
		t.Error("no flow obtained a dynamic threshold after warmup")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
