package mars

import (
	"testing"

	"mars/internal/ctrlchan"
)

func TestSystemEndToEndDelayFault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.StartBackground(96, 220)
	gt := sys.InjectFault(FaultDelay, 2*Second, 1500*Millisecond)
	sys.Run(4 * Second)

	if len(sys.Diagnoses) == 0 {
		t.Fatal("no diagnoses collected")
	}
	culprits := sys.Culprits()
	if len(culprits) == 0 {
		t.Fatal("no culprits produced")
	}
	found := -1
	for i, c := range culprits {
		if c.ContainsSwitch(gt.Switch) {
			found = i + 1
			break
		}
	}
	if found < 1 || found > 5 {
		t.Errorf("true switch s%d ranked %d; list head: %v", gt.Switch, found, culprits[:min(3, len(culprits))])
	}
}

func TestSystemRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FatTreeK = 3
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("expected error for odd K")
	}
}

func TestSystemOverheadCountersMove(t *testing.T) {
	cfg := DefaultConfig()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.StartBackground(24, 100)
	sys.Run(1 * Second)
	if sys.TelemetryOverheadBytes() == 0 {
		t.Error("no telemetry overhead counted")
	}
	// Refresh bytes should accrue even without anomalies.
	if sys.DiagnosisOverheadBytes() == 0 {
		t.Error("no control-channel bytes counted")
	}
}

func TestSystemThresholdBecomesDynamic(t *testing.T) {
	cfg := DefaultConfig()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.StartBackground(96, 220)
	sys.Run(2 * Second)
	dynamic := 0
	for _, src := range sys.FT.EdgeIDs {
		for _, dst := range sys.FT.EdgeIDs {
			if src == dst {
				continue
			}
			if th := sys.ThresholdOf(FlowID{Src: src, Sink: dst}); th < cfg.Program.DefaultThreshold {
				dynamic++
			}
		}
	}
	if dynamic == 0 {
		t.Error("no flow obtained a dynamic threshold after warmup")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestLossyControlChannelDeterminism(t *testing.T) {
	// Two identical seeded runs through a 20%-lossy control channel must
	// agree exactly: same culprit list, same control-plane byte counts,
	// same channel traffic. The channel draws from its own seeded source,
	// so its faults are part of the reproducible event stream.
	run := func() *System {
		cfg := DefaultConfig()
		cfg.Seed = 13
		cfg.CtrlChan = ctrlchan.Lossy(0.2, 42)
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys.StartBackground(48, 200)
		sys.InjectFault(FaultDelay, Second, Second)
		sys.Run(3 * Second)
		return sys
	}
	a, b := run(), run()
	ca, cb := a.Culprits(), b.Culprits()
	if len(ca) != len(cb) {
		t.Fatalf("culprit counts differ: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i].String() != cb[i].String() {
			t.Errorf("culprit %d differs: %v vs %v", i, ca[i], cb[i])
		}
	}
	if a.Controller.Bytes != b.Controller.Bytes {
		t.Errorf("byte accounting differs:\n%+v\n%+v", a.Controller.Bytes, b.Controller.Bytes)
	}
	if a.CtrlChan.Stats != b.CtrlChan.Stats {
		t.Errorf("channel stats differ:\n%+v\n%+v", a.CtrlChan.Stats, b.CtrlChan.Stats)
	}
	if a.CtrlChan.Stats.ToSwitch.Lost == 0 && a.CtrlChan.Stats.ToController.Lost == 0 {
		t.Error("20% loss lost nothing; channel not engaged")
	}
}

func TestPerfectChannelAddsNoRequestTraffic(t *testing.T) {
	// With the default (perfect) channel nothing times out, so the retry
	// machinery must stay cold: no retries, no duplicates, no partials.
	cfg := DefaultConfig()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.StartBackground(48, 200)
	sys.InjectFault(FaultDelay, Second, Second)
	sys.Run(3 * Second)
	bt := sys.Controller.Bytes
	if bt.Retries != 0 || bt.DuplicateNotifications != 0 || bt.PartialDiagnoses != 0 {
		t.Errorf("perfect channel exercised fault machinery: %+v", bt)
	}
	st := sys.CtrlChan.Stats
	if st.ToSwitch.Lost != 0 || st.ToController.Lost != 0 {
		t.Errorf("perfect channel lost messages: %+v", st)
	}
	if st.ToSwitch.Sent == 0 || st.ToController.Sent == 0 {
		t.Error("control traffic did not flow through the channel")
	}
}
